#ifndef HPLREPRO_CLSIM_RUNTIME_HPP
#define HPLREPRO_CLSIM_RUNTIME_HPP

/// \file runtime.hpp
/// The clsim host API: RAII C++ objects mirroring the OpenCL 1.x host
/// object model — Platform, Device, Context, Buffer, Program, Kernel,
/// CommandQueue, Event. The OpenCL-style baseline benchmarks are written
/// against this API with kernel source strings, exactly as a hand-written
/// OpenCL program would be (minus the C error-code plumbing).
///
/// Execution is asynchronous, as on a real OpenCL device: each queue owns
/// a dedicated worker thread that drains its commands in order, so
/// enqueue_* returns immediately and finish()/Event::wait() genuinely
/// block. "Device time" is simulated by the timing model and accumulated
/// per queue at drain time (the simulated timeline is therefore
/// deterministic regardless of host scheduling), while Events expose
/// per-command profiling information (the analogue of
/// CL_QUEUE_PROFILING_ENABLE). Setting HPL_SYNC=1 in the environment — or
/// calling set_async_enabled(false) — makes every enqueue wait for its
/// command before returning, which is useful for debugging; commands take
/// the same code path either way, so results and simulated timestamps are
/// bit-identical between the two modes.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "clc/bytecode.hpp"
#include "clc/compile.hpp"
#include "clsim/device.hpp"
#include "clsim/executor.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace hplrepro::clsim {

class RuntimeError : public Error {
public:
  explicit RuntimeError(const std::string& what)
      : Error("clsim: " + what) {}
};

/// Whether enqueued commands execute asynchronously on the queue's worker
/// thread (the default) or every enqueue waits for its command to complete
/// before returning. The first query reads HPL_SYNC from the environment
/// (HPL_SYNC=1 selects synchronous mode, the debugging escape hatch).
bool async_enabled();

/// Overrides the HPL_SYNC-derived default (tests and benchmarks compare
/// the two modes within one process).
void set_async_enabled(bool on);

class Context;
class Buffer;
class Program;
class Kernel;
class CommandQueue;

/// A device in the simulated platform. Cheap value type (shared impl).
class Device {
public:
  const DeviceSpec& spec() const { return *spec_; }
  const std::string& name() const { return spec_->name; }
  DeviceType type() const { return spec_->type; }
  bool supports_double() const { return spec_->supports_double; }

  bool operator==(const Device& other) const { return spec_ == other.spec_; }

private:
  friend class Platform;
  explicit Device(std::shared_ptr<const DeviceSpec> spec)
      : spec_(std::move(spec)) {}
  std::shared_ptr<const DeviceSpec> spec_;
};

/// The simulated OpenCL platform. Exposes the device catalog (Tesla,
/// Quadro, Xeon) plus any devices registered by tests.
class Platform {
public:
  /// The process-wide platform instance.
  static Platform& get();

  const std::vector<Device>& devices() const { return devices_; }

  /// First device of the given type; nullopt if none.
  std::optional<Device> device_by_type(DeviceType type) const;

  /// First device that is not a CPU (HPL's default device rule), falling
  /// back to the first device.
  Device default_accelerator() const;

  /// Finds a device by (sub)name, e.g. "Tesla" or "Quadro".
  std::optional<Device> device_by_name(const std::string& needle) const;

  /// Registers an additional simulated device (tests, experiments).
  Device register_device(const DeviceSpec& spec);

  /// Host thread pool shared by all simulated devices.
  hplrepro::ThreadPool& pool() { return pool_; }

private:
  Platform();
  std::vector<Device> devices_;
  hplrepro::ThreadPool pool_;
};

/// An OpenCL-like context bound to one device.
class Context {
public:
  explicit Context(Device device) : device_(std::move(device)) {}
  const Device& device() const { return device_; }

private:
  Device device_;
};

enum class MemFlags : std::uint32_t {
  ReadWrite = 0,
  ReadOnly = 1,
  WriteOnly = 2,
};

/// A device buffer (simulated: host-side storage owned by the buffer).
/// As with real clCreateBuffer, the contents are undefined until written.
class Buffer {
public:
  Buffer(Context& context, std::size_t bytes,
         MemFlags flags = MemFlags::ReadWrite);

  std::size_t size() const { return storage_->size; }
  MemFlags flags() const { return storage_->flags; }

  /// Direct access to the simulated device storage. Bypasses the queue's
  /// simulated transfer accounting; tests use it for verification.
  std::byte* raw() { return storage_->data.get(); }
  const std::byte* raw() const { return storage_->data.get(); }

  /// Zero-fills the storage (testing convenience; real OpenCL would use
  /// clEnqueueFillBuffer).
  void fill_zero();

private:
  friend class CommandQueue;
  friend class Kernel;
  struct Storage {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    MemFlags flags = MemFlags::ReadWrite;
  };
  std::shared_ptr<Storage> storage_;
};

/// A program: OpenCL C source compiled for the context's device by the
/// clc compiler (the simulated vendor compiler).
class Program {
public:
  Program(Context& context, std::string source);

  /// Compiles the source with clBuildProgram-style `options` (e.g.
  /// "-cl-opt-disable"; empty means the default, optimizing build).
  /// Throws RuntimeError on failure — including unrecognised options; the
  /// build log is available either way, as with clBuildProgram.
  void build(const std::string& options = "");
  bool built() const { return module_ != nullptr; }
  const std::string& build_log() const { return build_log_; }
  const std::string& source() const { return source_; }
  const std::string& build_options() const { return build_options_; }

  /// What the optimizer did during the last successful build.
  const clc::OptReport& opt_report() const { return opt_report_; }

  const clc::Module& module() const;
  /// Shared ownership of the built module. Kernels (and the commands
  /// enqueued from them) retain it, so a pending launch stays valid even
  /// if the Program is destroyed before the queue drains.
  std::shared_ptr<const clc::Module> module_ptr() const;
  const Device& device() const { return device_; }

private:
  Device device_;
  std::string source_;
  std::string build_options_;
  std::shared_ptr<const clc::Module> module_;
  std::string build_log_;
  clc::OptReport opt_report_;
};

/// A kernel handle plus its bound arguments (clSetKernelArg analogue).
class Kernel {
public:
  Kernel(Program& program, const std::string& name);

  const std::string& name() const { return fn_->name; }
  std::size_t num_args() const { return fn_->params.size(); }

  /// Declared type of parameter `index` (introspection for the C API).
  const clc::Type& param_type(unsigned index) const;

  void set_arg(unsigned index, const Buffer& buffer);

  /// Dynamically sized __local argument (OpenCL's
  /// clSetKernelArg(kernel, i, bytes, NULL)): the runtime reserves `bytes`
  /// of per-group scratchpad and passes its address to the kernel.
  void set_arg_local(unsigned index, std::size_t bytes);

  /// Scalar argument; converted to the parameter's declared type.
  void set_arg(unsigned index, double value);
  void set_arg(unsigned index, float value);
  void set_arg(unsigned index, std::int32_t value);
  void set_arg(unsigned index, std::uint32_t value);
  void set_arg(unsigned index, std::int64_t value);
  void set_arg(unsigned index, std::uint64_t value);

private:
  friend class CommandQueue;
  struct LocalAlloc {
    std::size_t bytes = 0;
  };
  using ArgSlot =
      std::variant<std::monostate, std::shared_ptr<Buffer::Storage>,
                   clc::Value, LocalAlloc>;

  void set_scalar(unsigned index, double as_double, std::int64_t as_int,
                  bool from_float);

  std::shared_ptr<const clc::Module> module_;  // keeps fn_ alive
  const clc::CompiledFunction* fn_;
  std::vector<ArgSlot> args_;
};

/// A shared, thread-safe handle to one enqueued command (the analogue of
/// cl_event). Events progress through the OpenCL status lifecycle
/// Queued -> Submitted -> Running -> Complete; wait() blocks until
/// Complete and rethrows any execution error (e.g. a VM trap).
///
/// Profiling accessors expose the command's position on the queue's
/// simulated timeline (the analogue of the four CL_PROFILING_COMMAND_*
/// timestamps under CL_QUEUE_PROFILING_ENABLE). Timestamps are simulated
/// seconds since the queue's creation and obey
/// queued() <= submitted() <= started() <= ended(), with
/// ended() - started() == sim_seconds(). Profiling data exists only once
/// the command completes, so every profiling accessor wait()s first.
///
/// Copies share state; a default-constructed Event is a complete no-op
/// command with zeroed profiling data.
class Event {
public:
  enum class Status { Queued, Submitted, Running, Complete };

  Event();

  /// Current lifecycle status (non-blocking).
  Status status() const;
  bool complete() const { return status() == Status::Complete; }

  /// Blocks until the command completes. Rethrows the command's execution
  /// error, if any (enqueue-time validation errors still throw from
  /// enqueue_* itself).
  void wait() const;

  /// Registers `fn` to run when the command completes (on the queue worker
  /// thread), or immediately on this thread if it already has. Callbacks
  /// are not invoked for commands that failed.
  void on_complete(std::function<void(const Event&)> fn);

  /// Like on_complete, but `fn` also runs for commands that failed, with
  /// `failed` set. Profiling accessors on a failed event rethrow its
  /// error, so callbacks must consult `failed` before reading them.
  void on_settled(std::function<void(const Event&, bool failed)> fn);

  // Profiling accessors; each waits for completion first.
  double sim_seconds() const;
  const clc::ExecStats& stats() const;
  const TimingBreakdown& timing() const;
  double wall_seconds() const;

  double queued() const;
  double submitted() const;
  double started() const;
  double ended() const;

  /// Host wall-clock window (trace-epoch microseconds) during which the
  /// command actually executed on its queue worker. Used to observe real
  /// overlap between queues; waits for completion first.
  double host_started_us() const;
  double host_ended_us() const;

private:
  friend class CommandQueue;
  struct State {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    Status status = Status::Complete;
    std::exception_ptr error;
    std::vector<std::function<void(const Event&)>> callbacks;
    std::vector<std::function<void(const Event&, bool)>> settled_callbacks;
    // Profiling payload: written by the queue worker before status flips
    // to Complete, immutable afterwards.
    double sim_seconds = 0;
    double wall_seconds = 0;
    double queued_s = 0;
    double submit_s = 0;
    double start_s = 0;
    double end_s = 0;
    double host_start_us = 0;
    double host_end_us = 0;
    clc::ExecStats stats;
    TimingBreakdown timing;
  };
  explicit Event(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// An in-order command queue backed by a dedicated worker thread: every
/// enqueue_* validates its arguments, appends a command and returns
/// immediately with an Event; the worker drains commands strictly in
/// enqueue order (waiting out each command's wait-list first), executes
/// them, and stamps their simulated timestamps at drain time — so the
/// simulated per-device timeline is deterministic no matter how host
/// threads interleave. finish() genuinely blocks until the queue is empty.
///
/// Errors raised during deferred execution (VM traps) are stored on the
/// Event and rethrown by Event::wait(); finish() rethrows the first such
/// error of the queue. Argument and launch-geometry validation happens at
/// enqueue time and throws synchronously.
class CommandQueue {
public:
  explicit CommandQueue(Context& context);
  /// Drains outstanding commands, then joins the worker. Pending errors
  /// are swallowed (call finish() first to observe them).
  ~CommandQueue();

  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  const Device& device() const { return device_; }

  Event enqueue_write_buffer(Buffer& buffer, const void* src,
                             std::size_t bytes, std::size_t offset = 0,
                             std::vector<Event> wait_list = {});
  Event enqueue_read_buffer(const Buffer& buffer, void* dst,
                            std::size_t bytes, std::size_t offset = 0,
                            std::vector<Event> wait_list = {});

  /// Device-to-device (or same-device) copy, the clEnqueueCopyBuffer
  /// analogue. Runs on THIS queue — by convention the source device's —
  /// and is billed one transfer on its simulated interconnect. The
  /// co-execution merge step uses it to reconcile disjoint written
  /// regions without a host round-trip.
  Event enqueue_copy_buffer(const Buffer& src, Buffer& dst,
                            std::size_t bytes, std::size_t src_offset = 0,
                            std::size_t dst_offset = 0,
                            std::vector<Event> wait_list = {});

  /// Launches a kernel over `global` work-items. Passing no `local` lets
  /// the runtime pick one (OpenCL's NULL local size). Arguments are
  /// snapshotted at enqueue time, so the kernel object may be re-armed for
  /// the next launch immediately. A `slice` narrows execution to a run of
  /// work-groups along one dimension (co-execution splits); work-items
  /// still observe the full launch geometry.
  Event enqueue_ndrange_kernel(Kernel& kernel, const NDRange& global,
                               std::optional<NDRange> local = std::nullopt,
                               std::vector<Event> wait_list = {},
                               std::optional<LaunchSlice> slice = std::nullopt);

  /// Blocks until all enqueued commands (and their completion callbacks)
  /// have finished, then rethrows the first deferred execution error, if
  /// any (clearing it).
  void finish();

  /// Forgets the queue's sticky first-error if it is the one carried by
  /// `event`, whose wait() already surfaced it to the caller — so finish()
  /// does not report the same failure a second time. Errors belonging to
  /// other commands are left in place.
  void consume_error(const Event& event);

  /// Total simulated device seconds accumulated by this queue. Reflects
  /// completed commands only; call finish() first for a quiescent value.
  double simulated_seconds() const;
  /// Sum over kernel launches only (excluding transfers).
  double simulated_kernel_seconds() const;
  /// Host wall-clock spent executing this queue's commands (simulation
  /// cost).
  double wall_seconds() const;

  /// finish()es, then zeroes the simulated clock and wall counters.
  void reset_timers();

private:
  struct Command {
    /// Executes the command, filling the profiling payload (sim_seconds,
    /// wall_seconds, stats, timing) of `state`.
    std::function<void(Event::State&)> run;
    std::shared_ptr<Event::State> state;
    std::vector<Event> wait_list;
    std::string label;
    const char* cat = "";
    bool is_kernel = false;
    double enqueue_us = 0;  // host trace clock at enqueue
  };

  /// Posts `cmd` to the worker; in synchronous mode also finish()es.
  Event submit(Command cmd);
  /// Worker-side: waits the wait-list, runs the command, stamps simulated
  /// timestamps, records trace events and publishes completion.
  void execute(Command& cmd);

  Device device_;
  mutable std::mutex mutex_;  // guards timers and first_error_
  double sim_seconds_ = 0;
  double sim_kernel_seconds_ = 0;
  double wall_seconds_ = 0;
  std::exception_ptr first_error_;
  // Metrics handles, resolved once at construction so the worker never
  // touches the registry. Queues on the same device share them by name.
  metrics::Gauge* depth_gauge_;
  metrics::Gauge* util_gauge_;
  metrics::Counter* busy_counter_;
  metrics::Histogram* dwell_queued_;
  metrics::Histogram* dwell_wait_;
  metrics::Histogram* dwell_run_;
  double created_us_ = 0;   // trace clock at construction (for utilization)
  double busy_us_ = 0;      // worker-thread-only running total
  // Declared last so it stops (draining any queued commands that touch
  // the members above) before they are destroyed.
  hplrepro::SerialWorker worker_;
};

}  // namespace hplrepro::clsim

#endif  // HPLREPRO_CLSIM_RUNTIME_HPP
