#ifndef HPLREPRO_CLSIM_RUNTIME_HPP
#define HPLREPRO_CLSIM_RUNTIME_HPP

/// \file runtime.hpp
/// The clsim host API: RAII C++ objects mirroring the OpenCL 1.x host
/// object model — Platform, Device, Context, Buffer, Program, Kernel,
/// CommandQueue, Event. The OpenCL-style baseline benchmarks are written
/// against this API with kernel source strings, exactly as a hand-written
/// OpenCL program would be (minus the C error-code plumbing).
///
/// Execution is synchronous; "device time" is simulated by the timing
/// model and accumulated per queue, while Events expose per-command
/// profiling information (the analogue of CL_QUEUE_PROFILING_ENABLE).

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "clc/bytecode.hpp"
#include "clc/compile.hpp"
#include "clsim/device.hpp"
#include "clsim/executor.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace hplrepro::clsim {

class RuntimeError : public Error {
public:
  explicit RuntimeError(const std::string& what)
      : Error("clsim: " + what) {}
};

class Context;
class Buffer;
class Program;
class Kernel;
class CommandQueue;

/// A device in the simulated platform. Cheap value type (shared impl).
class Device {
public:
  const DeviceSpec& spec() const { return *spec_; }
  const std::string& name() const { return spec_->name; }
  DeviceType type() const { return spec_->type; }
  bool supports_double() const { return spec_->supports_double; }

  bool operator==(const Device& other) const { return spec_ == other.spec_; }

private:
  friend class Platform;
  explicit Device(std::shared_ptr<const DeviceSpec> spec)
      : spec_(std::move(spec)) {}
  std::shared_ptr<const DeviceSpec> spec_;
};

/// The simulated OpenCL platform. Exposes the device catalog (Tesla,
/// Quadro, Xeon) plus any devices registered by tests.
class Platform {
public:
  /// The process-wide platform instance.
  static Platform& get();

  const std::vector<Device>& devices() const { return devices_; }

  /// First device of the given type; nullopt if none.
  std::optional<Device> device_by_type(DeviceType type) const;

  /// First device that is not a CPU (HPL's default device rule), falling
  /// back to the first device.
  Device default_accelerator() const;

  /// Finds a device by (sub)name, e.g. "Tesla" or "Quadro".
  std::optional<Device> device_by_name(const std::string& needle) const;

  /// Registers an additional simulated device (tests, experiments).
  Device register_device(const DeviceSpec& spec);

  /// Host thread pool shared by all simulated devices.
  hplrepro::ThreadPool& pool() { return pool_; }

private:
  Platform();
  std::vector<Device> devices_;
  hplrepro::ThreadPool pool_;
};

/// An OpenCL-like context bound to one device.
class Context {
public:
  explicit Context(Device device) : device_(std::move(device)) {}
  const Device& device() const { return device_; }

private:
  Device device_;
};

enum class MemFlags : std::uint32_t {
  ReadWrite = 0,
  ReadOnly = 1,
  WriteOnly = 2,
};

/// A device buffer (simulated: host-side storage owned by the buffer).
/// As with real clCreateBuffer, the contents are undefined until written.
class Buffer {
public:
  Buffer(Context& context, std::size_t bytes,
         MemFlags flags = MemFlags::ReadWrite);

  std::size_t size() const { return storage_->size; }
  MemFlags flags() const { return storage_->flags; }

  /// Direct access to the simulated device storage. Bypasses the queue's
  /// simulated transfer accounting; tests use it for verification.
  std::byte* raw() { return storage_->data.get(); }
  const std::byte* raw() const { return storage_->data.get(); }

  /// Zero-fills the storage (testing convenience; real OpenCL would use
  /// clEnqueueFillBuffer).
  void fill_zero();

private:
  friend class CommandQueue;
  friend class Kernel;
  struct Storage {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    MemFlags flags = MemFlags::ReadWrite;
  };
  std::shared_ptr<Storage> storage_;
};

/// A program: OpenCL C source compiled for the context's device by the
/// clc compiler (the simulated vendor compiler).
class Program {
public:
  Program(Context& context, std::string source);

  /// Compiles the source with clBuildProgram-style `options` (e.g.
  /// "-cl-opt-disable"; empty means the default, optimizing build).
  /// Throws RuntimeError on failure — including unrecognised options; the
  /// build log is available either way, as with clBuildProgram.
  void build(const std::string& options = "");
  bool built() const { return module_.has_value(); }
  const std::string& build_log() const { return build_log_; }
  const std::string& source() const { return source_; }
  const std::string& build_options() const { return build_options_; }

  /// What the optimizer did during the last successful build.
  const clc::OptReport& opt_report() const { return opt_report_; }

  const clc::Module& module() const;
  const Device& device() const { return device_; }

private:
  Device device_;
  std::string source_;
  std::string build_options_;
  std::optional<clc::Module> module_;
  std::string build_log_;
  clc::OptReport opt_report_;
};

/// A kernel handle plus its bound arguments (clSetKernelArg analogue).
class Kernel {
public:
  Kernel(Program& program, const std::string& name);

  const std::string& name() const { return fn_->name; }
  std::size_t num_args() const { return fn_->params.size(); }

  /// Declared type of parameter `index` (introspection for the C API).
  const clc::Type& param_type(unsigned index) const;

  void set_arg(unsigned index, const Buffer& buffer);

  /// Dynamically sized __local argument (OpenCL's
  /// clSetKernelArg(kernel, i, bytes, NULL)): the runtime reserves `bytes`
  /// of per-group scratchpad and passes its address to the kernel.
  void set_arg_local(unsigned index, std::size_t bytes);

  /// Scalar argument; converted to the parameter's declared type.
  void set_arg(unsigned index, double value);
  void set_arg(unsigned index, float value);
  void set_arg(unsigned index, std::int32_t value);
  void set_arg(unsigned index, std::uint32_t value);
  void set_arg(unsigned index, std::int64_t value);
  void set_arg(unsigned index, std::uint64_t value);

private:
  friend class CommandQueue;
  struct LocalAlloc {
    std::size_t bytes = 0;
  };
  using ArgSlot =
      std::variant<std::monostate, std::shared_ptr<Buffer::Storage>,
                   clc::Value, LocalAlloc>;

  void set_scalar(unsigned index, double as_double, std::int64_t as_int,
                  bool from_float);

  const clc::Module* module_;
  const clc::CompiledFunction* fn_;
  std::vector<ArgSlot> args_;
};

/// Profiling information for one enqueued command, including its position
/// on the queue's simulated timeline (the analogue of the four
/// CL_PROFILING_COMMAND_* timestamps under CL_QUEUE_PROFILING_ENABLE).
/// Timestamps are simulated seconds since the queue's creation and obey
/// queued() <= submitted() <= started() <= ended(), with
/// ended() - started() == sim_seconds().
class Event {
public:
  double sim_seconds() const { return sim_seconds_; }
  const clc::ExecStats& stats() const { return stats_; }
  const TimingBreakdown& timing() const { return timing_; }
  double wall_seconds() const { return wall_seconds_; }

  double queued() const { return queued_s_; }
  double submitted() const { return submit_s_; }
  double started() const { return start_s_; }
  double ended() const { return end_s_; }

private:
  friend class CommandQueue;
  double sim_seconds_ = 0;
  double wall_seconds_ = 0;
  double queued_s_ = 0;
  double submit_s_ = 0;
  double start_s_ = 0;
  double end_s_ = 0;
  clc::ExecStats stats_;
  TimingBreakdown timing_;
};

/// An in-order command queue. Commands execute synchronously (the
/// simulator has no async pipeline) and accumulate simulated device time.
class CommandQueue {
public:
  explicit CommandQueue(Context& context);

  const Device& device() const { return device_; }

  Event enqueue_write_buffer(Buffer& buffer, const void* src,
                             std::size_t bytes, std::size_t offset = 0);
  Event enqueue_read_buffer(const Buffer& buffer, void* dst,
                            std::size_t bytes, std::size_t offset = 0);

  /// Launches a kernel over `global` work-items. Passing no `local` lets
  /// the runtime pick one (OpenCL's NULL local size).
  Event enqueue_ndrange_kernel(Kernel& kernel, const NDRange& global,
                               std::optional<NDRange> local = std::nullopt);

  /// Blocks until all enqueued work completes (no-op; synchronous).
  void finish() {}

  /// Total simulated device seconds accumulated by this queue.
  double simulated_seconds() const { return sim_seconds_; }
  /// Sum over kernel launches only (excluding transfers).
  double simulated_kernel_seconds() const { return sim_kernel_seconds_; }
  /// Host wall-clock spent inside this queue (simulation cost).
  double wall_seconds() const { return wall_seconds_; }

  void reset_timers() {
    sim_seconds_ = 0;
    sim_kernel_seconds_ = 0;
    wall_seconds_ = 0;
  }

private:
  /// Stamps the four timeline marks on `event` for a command of simulated
  /// duration `event.sim_seconds_`, advances the queue's simulated clock,
  /// and (when tracing) records the command on this device's sim track.
  void finish_command(Event& event, const std::string& label,
                      const char* cat);

  Device device_;
  double sim_seconds_ = 0;
  double sim_kernel_seconds_ = 0;
  double wall_seconds_ = 0;
};

}  // namespace hplrepro::clsim

#endif  // HPLREPRO_CLSIM_RUNTIME_HPP
