#include "clsim/timing.hpp"

#include <algorithm>

namespace hplrepro::clsim {

TimingBreakdown simulate_kernel_time(const clc::ExecStats& stats,
                                     const DeviceSpec& d) {
  TimingBreakdown t;

  const double hz = d.clock_ghz * 1e9;
  const double core_ops_per_s = hz * d.ipc;

  // Control-flow/stack operations are bookkeeping the VM needs but real
  // ISAs mostly fold away (addressing modes, fused compares); charge them
  // at a quarter of an ALU op.
  const double double_cost = d.double_rate > 0 ? 1.0 / d.double_rate : 1.0;
  const double weighted_ops =
      0.25 * static_cast<double>(stats.control_ops) +
      static_cast<double>(stats.int_ops) +
      static_cast<double>(stats.float_ops) +
      double_cost * static_cast<double>(stats.double_ops) +
      d.special_op_cycles * static_cast<double>(stats.special_ops);

  t.compute_s = weighted_ops / (core_ops_per_s * d.compute_units);

  const double gbw = d.global_bandwidth_gbs * 1e9;
  if (d.models_coalescing) {
    t.global_mem_s =
        static_cast<double>(stats.global_transactions * d.segment_bytes) / gbw;
  } else {
    t.global_mem_s = static_cast<double>(stats.global_load_bytes +
                                         stats.global_store_bytes) /
                     gbw;
  }

  t.local_mem_s = static_cast<double>(stats.local_bytes) /
                  (d.local_bandwidth_gbs * 1e9);

  t.barrier_s = static_cast<double>(stats.barriers_executed) *
                d.barrier_cycles / (hz * d.compute_units);

  t.launch_s = d.launch_overhead_us * 1e-6;

  // Devices with enough threads in flight overlap memory traffic with
  // compute (classic roofline); a device without that latency hiding (a
  // single CPU core) pays for them back to back.
  const double busy_s =
      d.hides_memory_latency
          ? std::max({t.compute_s, t.global_mem_s, t.local_mem_s})
          : t.compute_s + t.global_mem_s + t.local_mem_s;
  t.total_s = busy_s + t.barrier_s + t.launch_s;
  return t;
}

double simulate_transfer_time(std::uint64_t bytes, const DeviceSpec& d) {
  return d.transfer_latency_us * 1e-6 +
         static_cast<double>(bytes) / (d.transfer_bandwidth_gbs * 1e9);
}

}  // namespace hplrepro::clsim
