#include "clsim/runtime.hpp"

#include <cstring>

#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace hplrepro::clsim {

// --- Platform ----------------------------------------------------------------

Platform::Platform() : pool_(0) {
  auto add = [this](const DeviceSpec& spec) {
    devices_.push_back(Device(std::make_shared<DeviceSpec>(spec)));
  };
  // Order matters: HPL's default is the first non-CPU device, and the
  // paper's default device is the Tesla.
  add(tesla_c2050());
  add(quadro_fx380());
  add(xeon_host());
}

Platform& Platform::get() {
  static Platform instance;
  return instance;
}

std::optional<Device> Platform::device_by_type(DeviceType type) const {
  for (const auto& d : devices_) {
    if (d.type() == type) return d;
  }
  return std::nullopt;
}

Device Platform::default_accelerator() const {
  for (const auto& d : devices_) {
    if (d.type() != DeviceType::Cpu) return d;
  }
  return devices_.front();
}

std::optional<Device> Platform::device_by_name(
    const std::string& needle) const {
  for (const auto& d : devices_) {
    if (d.name().find(needle) != std::string::npos) return d;
  }
  return std::nullopt;
}

Device Platform::register_device(const DeviceSpec& spec) {
  devices_.push_back(Device(std::make_shared<DeviceSpec>(spec)));
  return devices_.back();
}

// --- Buffer ------------------------------------------------------------------

Buffer::Buffer(Context& context, std::size_t bytes, MemFlags flags) {
  if (bytes == 0) throw RuntimeError("buffer size must be nonzero");
  if (bytes > context.device().spec().global_mem_bytes) {
    throw RuntimeError("buffer larger than device global memory");
  }
  storage_ = std::make_shared<Storage>();
  // Deliberately uninitialised, like clCreateBuffer: allocation must be
  // cheap; contents are undefined until the first write.
  storage_->data = std::make_unique_for_overwrite<std::byte[]>(bytes);
  storage_->size = bytes;
  storage_->flags = flags;
}

void Buffer::fill_zero() {
  std::memset(storage_->data.get(), 0, storage_->size);
}

// --- Program -----------------------------------------------------------------

Program::Program(Context& context, std::string source)
    : device_(context.device()), source_(std::move(source)) {}

void Program::build(const std::string& options) {
  clc::CompileOptions copts;
  std::string opt_error;
  if (!clc::parse_build_options(options, copts, opt_error)) {
    build_log_ = opt_error;
    throw RuntimeError("program build failed: " + opt_error);
  }
  build_options_ = options;
  try {
    clc::CompileResult result = clc::compile(source_, copts);
    build_log_ = result.build_log;
    opt_report_ = std::move(result.opt_report);
    module_ = std::move(result.module);
  } catch (const clc::CompileError& e) {
    build_log_ = e.build_log();
    throw RuntimeError("program build failed:\n" + build_log_);
  }
}

const clc::Module& Program::module() const {
  if (!module_) throw RuntimeError("program has not been built");
  return *module_;
}

// --- Kernel ------------------------------------------------------------------

Kernel::Kernel(Program& program, const std::string& name)
    : module_(&program.module()) {
  fn_ = module_->find(name);
  if (fn_ == nullptr || !fn_->is_kernel) {
    throw RuntimeError("no kernel named '" + name + "' in program");
  }
  args_.resize(fn_->params.size());
}

const clc::Type& Kernel::param_type(unsigned index) const {
  if (index >= fn_->params.size()) {
    throw RuntimeError("param_type: index out of range");
  }
  return fn_->params[index].type;
}

void Kernel::set_arg(unsigned index, const Buffer& buffer) {
  if (index >= args_.size()) throw RuntimeError("kernel arg index out of range");
  const clc::Type& param = fn_->params[index].type;
  if (!param.pointer) {
    throw RuntimeError("kernel parameter " + std::to_string(index) +
                       " ('" + fn_->params[index].name +
                       "') is a scalar; a buffer was supplied");
  }
  args_[index] = buffer.storage_;
}

void Kernel::set_arg_local(unsigned index, std::size_t bytes) {
  if (index >= args_.size()) throw RuntimeError("kernel arg index out of range");
  const clc::Type& param = fn_->params[index].type;
  if (!param.pointer || param.space != clc::AddressSpace::Local) {
    throw RuntimeError("kernel parameter " + std::to_string(index) + " ('" +
                       fn_->params[index].name +
                       "') is not a __local pointer");
  }
  if (bytes == 0) throw RuntimeError("__local argument size must be nonzero");
  args_[index] = LocalAlloc{bytes};
}

void Kernel::set_scalar(unsigned index, double as_double, std::int64_t as_int,
                        bool from_float) {
  if (index >= args_.size()) throw RuntimeError("kernel arg index out of range");
  const clc::Type& param = fn_->params[index].type;
  if (param.pointer) {
    throw RuntimeError("kernel parameter " + std::to_string(index) +
                       " ('" + fn_->params[index].name +
                       "') is a pointer; a scalar was supplied");
  }
  clc::Value v{};
  switch (param.scalar) {
    case clc::Scalar::Float:
      v.f32 = from_float ? static_cast<float>(as_double)
                         : static_cast<float>(as_int);
      break;
    case clc::Scalar::Double:
      v.f64 = from_float ? as_double : static_cast<double>(as_int);
      break;
    default: {
      std::int64_t raw = from_float ? static_cast<std::int64_t>(as_double)
                                    : as_int;
      // Normalise to the parameter's width/signedness, matching the VM's
      // stack invariant for slot values.
      switch (param.scalar) {
        case clc::Scalar::Bool: raw = raw != 0; break;
        case clc::Scalar::Char: raw = static_cast<std::int8_t>(raw); break;
        case clc::Scalar::UChar: raw = static_cast<std::uint8_t>(raw); break;
        case clc::Scalar::Short: raw = static_cast<std::int16_t>(raw); break;
        case clc::Scalar::UShort: raw = static_cast<std::uint16_t>(raw); break;
        case clc::Scalar::Int: raw = static_cast<std::int32_t>(raw); break;
        case clc::Scalar::UInt: raw = static_cast<std::uint32_t>(raw); break;
        default: break;
      }
      v.i64 = raw;
      break;
    }
  }
  args_[index] = v;
}

void Kernel::set_arg(unsigned index, double value) {
  set_scalar(index, value, 0, true);
}
void Kernel::set_arg(unsigned index, float value) {
  set_scalar(index, value, 0, true);
}
void Kernel::set_arg(unsigned index, std::int32_t value) {
  set_scalar(index, 0, value, false);
}
void Kernel::set_arg(unsigned index, std::uint32_t value) {
  set_scalar(index, 0, static_cast<std::int64_t>(value), false);
}
void Kernel::set_arg(unsigned index, std::int64_t value) {
  set_scalar(index, 0, value, false);
}
void Kernel::set_arg(unsigned index, std::uint64_t value) {
  set_scalar(index, 0, static_cast<std::int64_t>(value), false);
}

// --- CommandQueue -------------------------------------------------------------

CommandQueue::CommandQueue(Context& context) : device_(context.device()) {}

void CommandQueue::finish_command(Event& event, const std::string& label,
                                  const char* cat) {
  // The queue is in order and the simulator synchronous, so a command is
  // queued, submitted and started the instant the device clock allows.
  event.queued_s_ = sim_seconds_;
  event.submit_s_ = sim_seconds_;
  event.start_s_ = sim_seconds_;
  event.end_s_ = sim_seconds_ + event.sim_seconds_;
  sim_seconds_ = event.end_s_;
  wall_seconds_ += event.wall_seconds_;

  if (trace::enabled()) {
    trace::EventRecord record;
    record.name = label;
    record.cat = cat;
    record.track = "sim:" + device_.name();
    record.simulated = true;
    record.ts_us = event.start_s_ * 1e6;
    record.dur_us = event.sim_seconds_ * 1e6;
    record.args.num("sim_ms", event.sim_seconds_ * 1e3);
    trace::record(std::move(record));
  }
}

Event CommandQueue::enqueue_write_buffer(Buffer& buffer, const void* src,
                                         std::size_t bytes,
                                         std::size_t offset) {
  if (offset + bytes > buffer.size()) {
    throw RuntimeError("write_buffer out of range");
  }
  hplrepro::Stopwatch wall;
  std::memcpy(buffer.raw() + offset, src, bytes);
  Event event;
  event.sim_seconds_ = simulate_transfer_time(bytes, device_.spec());
  event.wall_seconds_ = wall.seconds();
  finish_command(event, "write_buffer " + std::to_string(bytes) + "B",
                 "transfer");
  return event;
}

Event CommandQueue::enqueue_read_buffer(const Buffer& buffer, void* dst,
                                        std::size_t bytes,
                                        std::size_t offset) {
  if (offset + bytes > buffer.size()) {
    throw RuntimeError("read_buffer out of range");
  }
  hplrepro::Stopwatch wall;
  std::memcpy(dst, buffer.raw() + offset, bytes);
  Event event;
  event.sim_seconds_ = simulate_transfer_time(bytes, device_.spec());
  event.wall_seconds_ = wall.seconds();
  finish_command(event, "read_buffer " + std::to_string(bytes) + "B",
                 "transfer");
  return event;
}

Event CommandQueue::enqueue_ndrange_kernel(Kernel& kernel,
                                           const NDRange& global,
                                           std::optional<NDRange> local) {
  // Assemble the argument vector and buffer table.
  std::vector<clc::Value> args(kernel.args_.size());
  std::vector<std::shared_ptr<Buffer::Storage>> retained;
  std::vector<std::span<std::byte>> buffers;

  // Dynamically sized __local arguments are carved out of every group's
  // arena just past the kernel's statically declared __local arrays.
  std::uint64_t local_top = kernel.fn_->local_bytes;
  std::uint64_t extra_local_bytes = 0;

  for (std::size_t i = 0; i < kernel.args_.size(); ++i) {
    const auto& slot = kernel.args_[i];
    if (std::holds_alternative<std::monostate>(slot)) {
      throw RuntimeError("kernel argument " + std::to_string(i) +
                         " ('" + kernel.fn_->params[i].name +
                         "') was never set");
    }
    if (const auto* storage =
            std::get_if<std::shared_ptr<Buffer::Storage>>(&slot)) {
      const clc::Type& param = kernel.fn_->params[i].type;
      const auto space = param.space == clc::AddressSpace::Constant
                             ? clc::PtrSpace::Constant
                             : clc::PtrSpace::Global;
      retained.push_back(*storage);
      buffers.emplace_back((*storage)->data.get(), (*storage)->size);
      args[i].u64 = clc::make_pointer(space, buffers.size() - 1, 0);
    } else if (const auto* local = std::get_if<Kernel::LocalAlloc>(&slot)) {
      local_top = (local_top + 7) & ~std::uint64_t{7};  // 8-byte align
      args[i].u64 = clc::make_pointer(clc::PtrSpace::Local, 0, local_top);
      local_top += local->bytes;
      extra_local_bytes = local_top - kernel.fn_->local_bytes;
    } else {
      args[i] = std::get<clc::Value>(slot);
    }
  }

  const NDRange local_range =
      local.has_value() ? *local : choose_local_range(global);

  LaunchResult launch = execute_ndrange(
      *kernel.module_, *kernel.fn_, args,
      std::span<std::span<std::byte>>(buffers), global, local_range,
      device_.spec(), Platform::get().pool(), extra_local_bytes);

  Event event;
  event.sim_seconds_ = launch.timing.total_s;
  event.wall_seconds_ = launch.wall_seconds;
  event.stats_ = launch.stats;
  event.timing_ = launch.timing;
  sim_kernel_seconds_ += event.sim_seconds_;
  finish_command(event, kernel.name(), "kernel");
  return event;
}

}  // namespace hplrepro::clsim
