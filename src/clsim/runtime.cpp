#include "clsim/runtime.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace hplrepro::clsim {

// --- Async mode --------------------------------------------------------------

namespace {

std::atomic<int> g_async_mode{-1};  // -1: unread, 0: sync, 1: async

int read_async_mode_from_env() {
  const char* sync = std::getenv("HPL_SYNC");
  const bool synchronous =
      sync != nullptr && sync[0] != '\0' && !(sync[0] == '0' && sync[1] == '\0');
  return synchronous ? 0 : 1;
}

}  // namespace

bool async_enabled() {
  int mode = g_async_mode.load(std::memory_order_acquire);
  if (mode < 0) {
    mode = read_async_mode_from_env();
    int expected = -1;
    g_async_mode.compare_exchange_strong(expected, mode,
                                         std::memory_order_acq_rel);
  }
  return mode == 1;
}

void set_async_enabled(bool on) {
  g_async_mode.store(on ? 1 : 0, std::memory_order_release);
}

// --- Platform ----------------------------------------------------------------

Platform::Platform() : pool_(0) {
  auto add = [this](const DeviceSpec& spec) {
    devices_.push_back(Device(std::make_shared<DeviceSpec>(spec)));
  };
  // Order matters: HPL's default is the first non-CPU device, and the
  // paper's default device is the Tesla.
  add(tesla_c2050());
  add(quadro_fx380());
  add(xeon_host());
}

Platform& Platform::get() {
  static Platform instance;
  return instance;
}

std::optional<Device> Platform::device_by_type(DeviceType type) const {
  for (const auto& d : devices_) {
    if (d.type() == type) return d;
  }
  return std::nullopt;
}

Device Platform::default_accelerator() const {
  for (const auto& d : devices_) {
    if (d.type() != DeviceType::Cpu) return d;
  }
  return devices_.front();
}

std::optional<Device> Platform::device_by_name(
    const std::string& needle) const {
  for (const auto& d : devices_) {
    if (d.name().find(needle) != std::string::npos) return d;
  }
  return std::nullopt;
}

Device Platform::register_device(const DeviceSpec& spec) {
  devices_.push_back(Device(std::make_shared<DeviceSpec>(spec)));
  return devices_.back();
}

// --- Buffer ------------------------------------------------------------------

Buffer::Buffer(Context& context, std::size_t bytes, MemFlags flags) {
  if (bytes == 0) throw RuntimeError("buffer size must be nonzero");
  if (bytes > context.device().spec().global_mem_bytes) {
    throw RuntimeError("buffer larger than device global memory");
  }
  storage_ = std::make_shared<Storage>();
  // Deliberately uninitialised, like clCreateBuffer: allocation must be
  // cheap; contents are undefined until the first write.
  storage_->data = std::make_unique_for_overwrite<std::byte[]>(bytes);
  storage_->size = bytes;
  storage_->flags = flags;
}

void Buffer::fill_zero() {
  std::memset(storage_->data.get(), 0, storage_->size);
}

// --- Program -----------------------------------------------------------------

Program::Program(Context& context, std::string source)
    : device_(context.device()), source_(std::move(source)) {}

void Program::build(const std::string& options) {
  clc::CompileOptions copts;
  std::string opt_error;
  if (!clc::parse_build_options(options, copts, opt_error)) {
    build_log_ = opt_error;
    throw RuntimeError("program build failed: " + opt_error);
  }
  build_options_ = options;
  try {
    clc::CompileResult result = clc::compile(source_, copts);
    build_log_ = result.build_log;
    opt_report_ = std::move(result.opt_report);
    module_ = std::make_shared<const clc::Module>(std::move(result.module));
  } catch (const clc::CompileError& e) {
    build_log_ = e.build_log();
    throw RuntimeError("program build failed:\n" + build_log_);
  }
}

const clc::Module& Program::module() const {
  if (!module_) throw RuntimeError("program has not been built");
  return *module_;
}

std::shared_ptr<const clc::Module> Program::module_ptr() const {
  if (!module_) throw RuntimeError("program has not been built");
  return module_;
}

// --- Kernel ------------------------------------------------------------------

Kernel::Kernel(Program& program, const std::string& name)
    : module_(program.module_ptr()) {
  fn_ = module_->find(name);
  if (fn_ == nullptr || !fn_->is_kernel) {
    throw RuntimeError("no kernel named '" + name + "' in program");
  }
  args_.resize(fn_->params.size());
}

const clc::Type& Kernel::param_type(unsigned index) const {
  if (index >= fn_->params.size()) {
    throw RuntimeError("param_type: index out of range");
  }
  return fn_->params[index].type;
}

void Kernel::set_arg(unsigned index, const Buffer& buffer) {
  if (index >= args_.size()) throw RuntimeError("kernel arg index out of range");
  const clc::Type& param = fn_->params[index].type;
  if (!param.pointer) {
    throw RuntimeError("kernel parameter " + std::to_string(index) +
                       " ('" + fn_->params[index].name +
                       "') is a scalar; a buffer was supplied");
  }
  args_[index] = buffer.storage_;
}

void Kernel::set_arg_local(unsigned index, std::size_t bytes) {
  if (index >= args_.size()) throw RuntimeError("kernel arg index out of range");
  const clc::Type& param = fn_->params[index].type;
  if (!param.pointer || param.space != clc::AddressSpace::Local) {
    throw RuntimeError("kernel parameter " + std::to_string(index) + " ('" +
                       fn_->params[index].name +
                       "') is not a __local pointer");
  }
  if (bytes == 0) throw RuntimeError("__local argument size must be nonzero");
  args_[index] = LocalAlloc{bytes};
}

void Kernel::set_scalar(unsigned index, double as_double, std::int64_t as_int,
                        bool from_float) {
  if (index >= args_.size()) throw RuntimeError("kernel arg index out of range");
  const clc::Type& param = fn_->params[index].type;
  if (param.pointer) {
    throw RuntimeError("kernel parameter " + std::to_string(index) +
                       " ('" + fn_->params[index].name +
                       "') is a pointer; a scalar was supplied");
  }
  clc::Value v{};
  switch (param.scalar) {
    case clc::Scalar::Float:
      v.f32 = from_float ? static_cast<float>(as_double)
                         : static_cast<float>(as_int);
      break;
    case clc::Scalar::Double:
      v.f64 = from_float ? as_double : static_cast<double>(as_int);
      break;
    default: {
      std::int64_t raw = from_float ? static_cast<std::int64_t>(as_double)
                                    : as_int;
      // Normalise to the parameter's width/signedness, matching the VM's
      // stack invariant for slot values.
      switch (param.scalar) {
        case clc::Scalar::Bool: raw = raw != 0; break;
        case clc::Scalar::Char: raw = static_cast<std::int8_t>(raw); break;
        case clc::Scalar::UChar: raw = static_cast<std::uint8_t>(raw); break;
        case clc::Scalar::Short: raw = static_cast<std::int16_t>(raw); break;
        case clc::Scalar::UShort: raw = static_cast<std::uint16_t>(raw); break;
        case clc::Scalar::Int: raw = static_cast<std::int32_t>(raw); break;
        case clc::Scalar::UInt: raw = static_cast<std::uint32_t>(raw); break;
        default: break;
      }
      v.i64 = raw;
      break;
    }
  }
  args_[index] = v;
}

void Kernel::set_arg(unsigned index, double value) {
  set_scalar(index, value, 0, true);
}
void Kernel::set_arg(unsigned index, float value) {
  set_scalar(index, value, 0, true);
}
void Kernel::set_arg(unsigned index, std::int32_t value) {
  set_scalar(index, 0, value, false);
}
void Kernel::set_arg(unsigned index, std::uint32_t value) {
  set_scalar(index, 0, static_cast<std::int64_t>(value), false);
}
void Kernel::set_arg(unsigned index, std::int64_t value) {
  set_scalar(index, 0, value, false);
}
void Kernel::set_arg(unsigned index, std::uint64_t value) {
  set_scalar(index, 0, static_cast<std::int64_t>(value), false);
}

// --- Event -------------------------------------------------------------------

Event::Event() : state_(std::make_shared<State>()) {}

Event::Status Event::status() const {
  std::lock_guard lock(state_->mu);
  return state_->status;
}

void Event::wait() const {
  State& st = *state_;
  std::unique_lock lock(st.mu);
  st.cv.wait(lock, [&] { return st.status == Status::Complete; });
  if (st.error) std::rethrow_exception(st.error);
}

void Event::on_complete(std::function<void(const Event&)> fn) {
  State& st = *state_;
  {
    std::lock_guard lock(st.mu);
    if (st.status != Status::Complete) {
      st.callbacks.push_back(std::move(fn));
      return;
    }
    if (st.error) return;  // failed commands never fire callbacks
  }
  fn(*this);
}

void Event::on_settled(std::function<void(const Event&, bool failed)> fn) {
  State& st = *state_;
  bool failed;
  {
    std::lock_guard lock(st.mu);
    if (st.status != Status::Complete) {
      st.settled_callbacks.push_back(std::move(fn));
      return;
    }
    failed = st.error != nullptr;
  }
  fn(*this, failed);
}

double Event::sim_seconds() const {
  wait();
  return state_->sim_seconds;
}

const clc::ExecStats& Event::stats() const {
  wait();
  return state_->stats;
}

const TimingBreakdown& Event::timing() const {
  wait();
  return state_->timing;
}

double Event::wall_seconds() const {
  wait();
  return state_->wall_seconds;
}

double Event::queued() const {
  wait();
  return state_->queued_s;
}

double Event::submitted() const {
  wait();
  return state_->submit_s;
}

double Event::started() const {
  wait();
  return state_->start_s;
}

double Event::ended() const {
  wait();
  return state_->end_s;
}

double Event::host_started_us() const {
  wait();
  return state_->host_start_us;
}

double Event::host_ended_us() const {
  wait();
  return state_->host_end_us;
}

// --- CommandQueue -------------------------------------------------------------

CommandQueue::CommandQueue(Context& context) : device_(context.device()) {
  const std::string prefix = "queue." + device_.name();
  depth_gauge_ = &metrics::gauge(prefix + ".depth");
  util_gauge_ = &metrics::gauge(prefix + ".util_pct");
  busy_counter_ = &metrics::counter(prefix + ".busy_ns");
  dwell_queued_ = &metrics::histogram(prefix + ".dwell.queued_ns");
  dwell_wait_ = &metrics::histogram(prefix + ".dwell.wait_ns");
  dwell_run_ = &metrics::histogram(prefix + ".dwell.run_ns");
  created_us_ = trace::now_us();
}

CommandQueue::~CommandQueue() = default;  // worker_ dtor drains and joins

Event CommandQueue::submit(Command cmd) {
  cmd.state = std::make_shared<Event::State>();
  cmd.state->status = Event::Status::Queued;
  // Stamped unconditionally: tracing may be switched on while the command
  // is still pending, and a zero stamp would make its queued-phase record
  // span the whole process lifetime.
  cmd.enqueue_us = trace::now_us();
  if (metrics::enabled()) depth_gauge_->add(1);
  Event event(cmd.state);
  auto shared = std::make_shared<Command>(std::move(cmd));
  worker_.post([this, shared] { execute(*shared); });
  // Synchronous mode (HPL_SYNC=1): identical code path — the worker still
  // executes the command — but the enqueue does not return until it is
  // done, and deferred errors surface here instead of at the next sync.
  if (!async_enabled()) finish();
  return event;
}

void CommandQueue::execute(Command& cmd) {
  Event::State& st = *cmd.state;
  // Sampled once so the pickup stamp and the dwell records below agree
  // even if metrics are toggled while the command runs.
  const bool metrics_on = metrics::enabled();
  const double pickup_us = metrics_on ? trace::now_us() : 0.0;
  {
    std::lock_guard lock(st.mu);
    st.status = Event::Status::Submitted;
  }

  std::exception_ptr error;
  try {
    // In-order queue semantics: this command may not run until everything
    // it waits on has completed. Wait-list errors propagate.
    for (const Event& dep : cmd.wait_list) dep.wait();
    {
      std::lock_guard lock(st.mu);
      st.status = Event::Status::Running;
    }
    st.host_start_us = trace::now_us();
    cmd.run(st);
  } catch (...) {
    error = std::current_exception();
  }
  st.host_end_us = trace::now_us();

  {
    std::lock_guard lock(mutex_);
    if (error && !first_error_) first_error_ = error;
    // Simulated timestamps are assigned at drain time: the in-order queue
    // admits a command the instant its predecessor ends, so queued ==
    // submitted == started on the simulated clock and commands tile the
    // timeline deterministically.
    st.queued_s = sim_seconds_;
    st.submit_s = sim_seconds_;
    st.start_s = sim_seconds_;
    st.end_s = st.start_s + st.sim_seconds;
    sim_seconds_ = st.end_s;
    wall_seconds_ += st.wall_seconds;
    if (cmd.is_kernel) sim_kernel_seconds_ += st.sim_seconds;
  }

  if (error != nullptr) {
    // Both modes reach this point through the same worker path, so the
    // post-mortem has identical shape whether HPL_SYNC is set or not.
    metrics::flight_dump_once(cmd.is_kernel ? "kernel command failed"
                                            : "command failed");
  }

  if (metrics_on) {
    auto to_ns = [](double us) {
      return us > 0 ? static_cast<std::uint64_t>(us * 1e3) : 0;
    };
    const bool ran = st.host_start_us > 0;  // wait-list failures never run
    dwell_queued_->record_always(to_ns(pickup_us - cmd.enqueue_us));
    if (ran) {
      dwell_wait_->record_always(to_ns(st.host_start_us - pickup_us));
      const double run_us = st.host_end_us - st.host_start_us;
      dwell_run_->record_always(to_ns(run_us));
      busy_counter_->add_always(to_ns(run_us));
      if (run_us > 0) busy_us_ += run_us;
    }
    const double elapsed_us = st.host_end_us - created_us_;
    if (elapsed_us > 0) {
      util_gauge_->set(
          static_cast<std::int64_t>(busy_us_ / elapsed_us * 100.0));
    }
    depth_gauge_->add(-1);
  }

  if (trace::enabled() && !error) {
    // Device track (simulated clock): the command's execution window, with
    // the full queued/submitted/started/ended phase stamps as args.
    trace::EventRecord record;
    record.name = cmd.label;
    record.cat = cmd.cat;
    record.track = "sim:" + device_.name();
    record.simulated = true;
    record.ts_us = st.start_s * 1e6;
    record.dur_us = st.sim_seconds * 1e6;
    record.args.num("sim_ms", st.sim_seconds * 1e3)
        .num("queued_s", st.queued_s)
        .num("submitted_s", st.submit_s)
        .num("started_s", st.start_s)
        .num("ended_s", st.end_s);
    trace::record(std::move(record));

    // Queue track (host clock): time the command spent pending before the
    // worker picked it up, then its real execution window — this is where
    // cross-queue overlap is visible.
    trace::EventRecord pending;
    pending.name = cmd.label;
    pending.cat = cmd.cat;
    pending.track = "queue:" + device_.name();
    pending.ts_us = cmd.enqueue_us;
    pending.dur_us = st.host_start_us - cmd.enqueue_us;
    pending.args.str("phase", "queued");
    trace::record(std::move(pending));

    trace::EventRecord running;
    running.name = cmd.label;
    running.cat = cmd.cat;
    running.track = "queue:" + device_.name();
    running.ts_us = st.host_start_us;
    running.dur_us = st.host_end_us - st.host_start_us;
    running.args.str("phase", "running");
    trace::record(std::move(running));
  }

  // Publish completion, then fire callbacks outside the state lock (they
  // may read the event's profiling accessors).
  std::vector<std::function<void(const Event&)>> callbacks;
  std::vector<std::function<void(const Event&, bool)>> settled;
  {
    std::lock_guard lock(st.mu);
    st.error = error;
    st.status = Event::Status::Complete;
    callbacks = std::move(st.callbacks);
    st.callbacks.clear();
    settled = std::move(st.settled_callbacks);
    st.settled_callbacks.clear();
  }
  st.cv.notify_all();
  const Event event(cmd.state);
  if (!error) {
    for (const auto& fn : callbacks) fn(event);
  }
  for (const auto& fn : settled) fn(event, error != nullptr);
}

void CommandQueue::finish() {
  worker_.drain();
  std::exception_ptr error;
  {
    std::lock_guard lock(mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void CommandQueue::consume_error(const Event& event) {
  std::exception_ptr error;
  {
    std::lock_guard lock(event.state_->mu);
    error = event.state_->error;
  }
  if (error == nullptr) return;
  std::lock_guard lock(mutex_);
  if (first_error_ == error) first_error_ = nullptr;
}

double CommandQueue::simulated_seconds() const {
  std::lock_guard lock(mutex_);
  return sim_seconds_;
}

double CommandQueue::simulated_kernel_seconds() const {
  std::lock_guard lock(mutex_);
  return sim_kernel_seconds_;
}

double CommandQueue::wall_seconds() const {
  std::lock_guard lock(mutex_);
  return wall_seconds_;
}

void CommandQueue::reset_timers() {
  finish();
  std::lock_guard lock(mutex_);
  sim_seconds_ = 0;
  sim_kernel_seconds_ = 0;
  wall_seconds_ = 0;
}

Event CommandQueue::enqueue_write_buffer(Buffer& buffer, const void* src,
                                         std::size_t bytes,
                                         std::size_t offset,
                                         std::vector<Event> wait_list) {
  if (offset + bytes > buffer.size()) {
    throw RuntimeError("write_buffer out of range");
  }
  Command cmd;
  cmd.label = "write_buffer " + std::to_string(bytes) + "B";
  cmd.cat = "transfer";
  cmd.wait_list = std::move(wait_list);
  cmd.run = [storage = buffer.storage_, src, bytes, offset,
             spec = &device_.spec()](Event::State& st) {
    hplrepro::Stopwatch wall;
    std::memcpy(storage->data.get() + offset, src, bytes);
    st.sim_seconds = simulate_transfer_time(bytes, *spec);
    st.wall_seconds = wall.seconds();
  };
  return submit(std::move(cmd));
}

Event CommandQueue::enqueue_read_buffer(const Buffer& buffer, void* dst,
                                        std::size_t bytes,
                                        std::size_t offset,
                                        std::vector<Event> wait_list) {
  if (offset + bytes > buffer.size()) {
    throw RuntimeError("read_buffer out of range");
  }
  Command cmd;
  cmd.label = "read_buffer " + std::to_string(bytes) + "B";
  cmd.cat = "transfer";
  cmd.wait_list = std::move(wait_list);
  cmd.run = [storage = buffer.storage_, dst, bytes, offset,
             spec = &device_.spec()](Event::State& st) {
    hplrepro::Stopwatch wall;
    std::memcpy(dst, storage->data.get() + offset, bytes);
    st.sim_seconds = simulate_transfer_time(bytes, *spec);
    st.wall_seconds = wall.seconds();
  };
  return submit(std::move(cmd));
}

Event CommandQueue::enqueue_copy_buffer(const Buffer& src, Buffer& dst,
                                        std::size_t bytes,
                                        std::size_t src_offset,
                                        std::size_t dst_offset,
                                        std::vector<Event> wait_list) {
  if (src_offset + bytes > src.size()) {
    throw RuntimeError("copy_buffer source out of range");
  }
  if (dst_offset + bytes > dst.size()) {
    throw RuntimeError("copy_buffer destination out of range");
  }
  if (src.storage_ == dst.storage_ &&
      src_offset < dst_offset + bytes && dst_offset < src_offset + bytes) {
    throw RuntimeError("copy_buffer regions overlap");
  }
  Command cmd;
  cmd.label = "copy_buffer " + std::to_string(bytes) + "B";
  cmd.cat = "transfer";
  cmd.wait_list = std::move(wait_list);
  cmd.run = [src_storage = src.storage_, dst_storage = dst.storage_, bytes,
             src_offset, dst_offset,
             spec = &device_.spec()](Event::State& st) {
    hplrepro::Stopwatch wall;
    std::memcpy(dst_storage->data.get() + dst_offset,
                src_storage->data.get() + src_offset, bytes);
    st.sim_seconds = simulate_transfer_time(bytes, *spec);
    st.wall_seconds = wall.seconds();
  };
  return submit(std::move(cmd));
}

Event CommandQueue::enqueue_ndrange_kernel(Kernel& kernel,
                                           const NDRange& global,
                                           std::optional<NDRange> local,
                                           std::vector<Event> wait_list,
                                           std::optional<LaunchSlice> slice) {
  // Assemble the argument vector and buffer table. This snapshots the
  // kernel's arguments (retaining buffer storage) so the caller may rebind
  // them for the next launch while this one is still pending.
  std::vector<clc::Value> args(kernel.args_.size());
  std::vector<std::shared_ptr<Buffer::Storage>> retained;

  // Dynamically sized __local arguments are carved out of every group's
  // arena just past the kernel's statically declared __local arrays.
  std::uint64_t local_top = kernel.fn_->local_bytes;
  std::uint64_t extra_local_bytes = 0;

  for (std::size_t i = 0; i < kernel.args_.size(); ++i) {
    const auto& slot = kernel.args_[i];
    if (std::holds_alternative<std::monostate>(slot)) {
      throw RuntimeError("kernel argument " + std::to_string(i) +
                         " ('" + kernel.fn_->params[i].name +
                         "') was never set");
    }
    if (const auto* storage =
            std::get_if<std::shared_ptr<Buffer::Storage>>(&slot)) {
      const clc::Type& param = kernel.fn_->params[i].type;
      const auto space = param.space == clc::AddressSpace::Constant
                             ? clc::PtrSpace::Constant
                             : clc::PtrSpace::Global;
      retained.push_back(*storage);
      args[i].u64 = clc::make_pointer(space, retained.size() - 1, 0);
    } else if (const auto* local_arg = std::get_if<Kernel::LocalAlloc>(&slot)) {
      local_top = (local_top + 7) & ~std::uint64_t{7};  // 8-byte align
      args[i].u64 = clc::make_pointer(clc::PtrSpace::Local, 0, local_top);
      local_top += local_arg->bytes;
      extra_local_bytes = local_top - kernel.fn_->local_bytes;
    } else {
      args[i] = std::get<clc::Value>(slot);
    }
  }

  const NDRange local_range =
      local.has_value() ? *local : choose_local_range(global);

  // Launch-geometry and device-capability errors surface synchronously at
  // enqueue, as clEnqueueNDRangeKernel's error codes do; only execution
  // itself (and its traps) is deferred to the worker.
  validate_launch(*kernel.fn_, global, local_range, device_.spec(),
                  extra_local_bytes);
  if (slice.has_value()) {
    if (slice->dim < 0 || slice->dim >= global.dims) {
      throw RuntimeError("launch slice dimension out of range");
    }
    const std::size_t groups =
        global.sizes[slice->dim] / local_range.sizes[slice->dim];
    if (slice->group_count == 0 ||
        slice->group_begin + slice->group_count > groups) {
      throw RuntimeError("launch slice exceeds the group grid");
    }
  }

  Command cmd;
  cmd.label = kernel.name();
  cmd.cat = "kernel";
  cmd.is_kernel = true;
  cmd.wait_list = std::move(wait_list);
  cmd.run = [module = kernel.module_, fn = kernel.fn_,
             args = std::move(args), retained = std::move(retained), global,
             local_range, spec = &device_.spec(),
             extra_local_bytes, slice](Event::State& st) {
    std::vector<std::span<std::byte>> buffers;
    buffers.reserve(retained.size());
    for (const auto& storage : retained) {
      buffers.emplace_back(storage->data.get(), storage->size);
    }
    LaunchResult launch = execute_ndrange(
        *module, *fn, args, std::span<std::span<std::byte>>(buffers), global,
        local_range, *spec, Platform::get().pool(), extra_local_bytes,
        slice.has_value() ? &*slice : nullptr);
    st.sim_seconds = launch.timing.total_s;
    st.wall_seconds = launch.wall_seconds;
    st.stats = launch.stats;
    st.timing = launch.timing;
  };
  return submit(std::move(cmd));
}

}  // namespace hplrepro::clsim
