// The HPL layer over the asynchronous pipeline: eval() enqueues without
// blocking, host access synchronizes lazily through per-array events, and
// independent evals on different devices genuinely overlap — while results
// and profile invariants stay identical to HPL_SYNC=1 mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "clsim/runtime.hpp"
#include "hpl/HPL.h"
#include "support/stopwatch.hpp"

using namespace HPL;

namespace clsim = hplrepro::clsim;

namespace {

void saxpy(Array<float, 1> y, Array<float, 1> x, Float a) {
  y[idx] = a * x[idx] + y[idx];
}

void triple(Array<float, 1> data) { data[idx] = 3.0f * data[idx]; }

// Traps at execution time: work-items of one group diverge at a barrier.
void divergent(Array<float, 1> data) {
  if_(lidx < 2) { barrier(LOCAL); } endif_
  data[idx] = 1.0f;
}

class AsyncPipelineTest : public ::testing::Test {
protected:
  void SetUp() override {
    clsim::set_async_enabled(true);
    purge_kernel_cache();
    reset_profile();
  }
  void TearDown() override {
    clsim::set_async_enabled(true);
    set_kernel_build_options("");
  }
};

std::vector<float> run_two_device_chain() {
  const Device tesla = *Device::by_name("Tesla");
  const Device quadro = *Device::by_name("Quadro");
  constexpr std::size_t n = 4096;
  Array<float, 1> a(n), b(n), xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i) = static_cast<float>(i % 17) * 0.5f;
    b(i) = static_cast<float>(i % 23) * 0.25f;
    xs(i) = 1.0f + static_cast<float>(i % 5);
  }
  // Independent chains on two devices, then a cross-device move: `a` is
  // computed on the Tesla and then consumed on the Quadro.
  for (int rep = 0; rep < 4; ++rep) {
    eval(saxpy).device(tesla)(a, xs, 0.5f);
    eval(saxpy).device(quadro)(b, xs, 0.25f);
  }
  eval(triple).device(quadro)(a);

  std::vector<float> out(2 * n);
  for (std::size_t i = 0; i < n; ++i) out[i] = a(i);
  for (std::size_t i = 0; i < n; ++i) out[n + i] = b(i);
  return out;
}

TEST_F(AsyncPipelineTest, TwoDeviceChainMatchesSyncModeBitForBit) {
  const std::vector<float> async_out = run_two_device_chain();

  clsim::set_async_enabled(false);
  purge_kernel_cache();
  reset_profile();
  const std::vector<float> sync_out = run_two_device_chain();

  ASSERT_EQ(async_out.size(), sync_out.size());
  for (std::size_t i = 0; i < async_out.size(); ++i) {
    ASSERT_EQ(async_out[i], sync_out[i]) << i;
  }
}

TEST_F(AsyncPipelineTest, SyncModesCrossInterpretersBitForBit) {
  // The full sync x interpreter matrix: HPL_SYNC={0,1} crossed with
  // -cl-interp={stack,threaded}. Neither axis is allowed to be observable:
  // all four combinations must produce bit-identical results, identical
  // simulated time, and reconciled profiler counts.
  // Eager launches: the per-combo count assertions below pin the exact
  // unfused sequence (the fused matrix is fusion_test.cpp's job).
  ScopedFusionDisable fusion_off;
  struct Combo {
    bool async;
    const char* interp;
  };
  constexpr Combo combos[] = {{true, "stack"},
                              {true, "threaded"},
                              {false, "stack"},
                              {false, "threaded"}};

  std::vector<std::vector<float>> outputs;
  std::vector<ProfileSnapshot> snapshots;
  for (const Combo& combo : combos) {
    clsim::set_async_enabled(combo.async);
    set_kernel_build_options(std::string("-cl-interp=") + combo.interp);
    purge_kernel_cache();
    reset_profile();

    outputs.push_back(run_two_device_chain());

    const ProfileSnapshot snap = profile();
    EXPECT_EQ(snap.kernel_launches, 9u) << combo.interp;  // 4*2 saxpy + 1
    EXPECT_EQ(snap.kernel_cache_hits + snap.kernel_cache_misses,
              snap.kernel_launches)
        << combo.interp;
    // saxpy built per device + triple on the Quadro.
    EXPECT_EQ(snap.kernel_cache_misses, 3u) << combo.interp;
    std::uint64_t registry_launches = 0;
    for (const auto& k : kernel_profiles()) registry_launches += k.launches;
    EXPECT_EQ(registry_launches, snap.kernel_launches) << combo.interp;
    snapshots.push_back(snap);
  }

  for (std::size_t c = 1; c < outputs.size(); ++c) {
    ASSERT_EQ(outputs[0].size(), outputs[c].size());
    for (std::size_t i = 0; i < outputs[0].size(); ++i) {
      ASSERT_EQ(outputs[0][i], outputs[c][i])
          << "combo " << c << " element " << i;
    }
    EXPECT_DOUBLE_EQ(snapshots[0].kernel_sim_seconds,
                     snapshots[c].kernel_sim_seconds)
        << "combo " << c;
    EXPECT_EQ(snapshots[0].bytes_to_device, snapshots[c].bytes_to_device);
    EXPECT_EQ(snapshots[0].bytes_to_host, snapshots[c].bytes_to_host);
  }
}

TEST_F(AsyncPipelineTest, HostAccessSynchronizesLazily) {
  constexpr std::size_t n = 1 << 16;
  Array<float, 1> data(n);
  for (std::size_t i = 0; i < n; ++i) data(i) = 1.0f;

  // Several chained launches; the host does not block between them, and
  // the read-back only happens (and blocks) at the first element access.
  for (int rep = 0; rep < 3; ++rep) eval(triple)(data);
  const auto before = profile();  // quiesces, but moves no data
  EXPECT_EQ(before.bytes_to_host, 0u);
  EXPECT_EQ(data(0), 27.0f);  // <- the lazy synchronization point
  const auto after = profile();
  EXPECT_EQ(after.bytes_to_host, n * sizeof(float));
}

TEST_F(AsyncPipelineTest, ProfileCountersStayConsistentAcrossWorkers) {
  // Launch completions land from two queue workers concurrently; the
  // snapshot must still satisfy hits + misses == launches and account
  // every launch's simulated seconds.
  const Device tesla = *Device::by_name("Tesla");
  const Device quadro = *Device::by_name("Quadro");
  constexpr std::size_t n = 2048;
  Array<float, 1> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) a(i) = b(i) = 1.0f;

  constexpr std::uint64_t reps = 12;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    eval(triple).device(tesla)(a);
    eval(triple).device(quadro)(b);
  }
  const auto snap = profile();
  EXPECT_EQ(snap.kernel_launches, 2 * reps);
  EXPECT_EQ(snap.kernel_cache_hits + snap.kernel_cache_misses,
            snap.kernel_launches);
  EXPECT_EQ(snap.kernel_cache_misses, 2u);  // one build per device
  EXPECT_GT(snap.kernel_sim_seconds, 0.0);

  // The registry agrees with the snapshot (it quiesces the same way).
  std::uint64_t registry_launches = 0;
  for (const auto& k : kernel_profiles()) registry_launches += k.launches;
  EXPECT_EQ(registry_launches, snap.kernel_launches);
}

TEST_F(AsyncPipelineTest, FailedLaunchesKeepProfileReconciled) {
  // A launch that traps still counts as a launch in both the snapshot and
  // the per-kernel registry, in both pipeline modes, so
  // hits + misses == kernel_launches and profiler_report keeps reconciling
  // with profile() after the failure.
  // Eager mode: the sync-mode half of the test expects the trap to surface
  // from eval() itself, which only holds when nothing is deferred.
  ScopedFusionDisable fusion_off;
  auto reconciled_counts = [](std::uint64_t expected_launches) {
    const auto snap = profile();
    EXPECT_EQ(snap.kernel_launches, expected_launches);
    EXPECT_EQ(snap.kernel_cache_hits + snap.kernel_cache_misses,
              snap.kernel_launches);
    std::uint64_t registry_launches = 0;
    for (const auto& k : kernel_profiles()) registry_launches += k.launches;
    EXPECT_EQ(registry_launches, snap.kernel_launches);
  };

  constexpr std::size_t n = 8;
  {
    Array<float, 1> ok(n), bad(n);
    eval(triple)(ok);  // one healthy launch alongside the failing one
    eval(divergent).global(n).local(4)(bad);
    // Async mode: eval returned; the trap lands on the worker and is
    // rethrown (once) by the next quiescing operation.
    EXPECT_THROW(detail::Runtime::get().finish_all(),
                 hplrepro::clc::TrapError);
    reconciled_counts(2);
  }

  clsim::set_async_enabled(false);
  purge_kernel_cache();
  reset_profile();
  {
    Array<float, 1> bad(n);
    // Sync mode: the same trap surfaces from eval itself.
    EXPECT_THROW(eval(divergent).global(n).local(4)(bad),
                 hplrepro::clc::TrapError);
    reconciled_counts(1);
  }
}

TEST_F(AsyncPipelineTest, IndependentEvalsOverlapAcrossDevices) {
  const Device tesla = *Device::by_name("Tesla");
  const Device quadro = *Device::by_name("Quadro");
  constexpr std::size_t n = 1 << 18;
  Array<float, 1> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) a(i) = b(i) = 1.0f;

  auto& rt = detail::Runtime::get();
  auto& tesla_queue = *rt.entry(tesla).queue;
  auto& quadro_queue = *rt.entry(quadro).queue;

  // Warm caches and upload both arrays so the measured region is
  // launch-only, with one heavy kernel in flight per device.
  eval(triple).device(tesla)(a);
  eval(triple).device(quadro)(b);
  rt.finish_all();

  // If the two queue workers execute concurrently, the wall-clock they
  // spend simulating (summed over both queues) exceeds the elapsed host
  // time for the region. Retried: overlap is a host-scheduler property,
  // so a single miss is not a failure.
  int evals_done = 1;
  bool overlapped = false;
  for (int attempt = 0; attempt < 8 && !overlapped; ++attempt) {
    tesla_queue.reset_timers();
    quadro_queue.reset_timers();
    hplrepro::Stopwatch elapsed;
    eval(triple).device(tesla)(a);
    eval(triple).device(quadro)(b);
    // The raw queue finishes below bypass the runtime's forcing points, so
    // launch the deferred evals explicitly (different devices: no fusion,
    // one launch per queue, same as the eager sequence).
    flush();
    tesla_queue.finish();
    quadro_queue.finish();
    const double wall = elapsed.seconds();
    ++evals_done;
    overlapped =
        tesla_queue.wall_seconds() + quadro_queue.wall_seconds() > wall;
  }
  EXPECT_TRUE(overlapped);

  // And the overlap changed nothing about the results.
  const float expected = std::pow(3.0f, static_cast<float>(evals_done));
  EXPECT_EQ(a(0), expected);
  EXPECT_EQ(b(0), expected);
}

}  // namespace
