// The flight recorder post-mortem at the HPL level: a trapped kernel dumps
// every thread's recent-span ring to stderr exactly once, the dump has the
// same content shape whether the pipeline runs asynchronously or in
// HPL_SYNC=1 mode, and clean runs never dump.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "clsim/runtime.hpp"
#include "hpl/HPL.h"
#include "support/metrics.hpp"

using namespace HPL;

namespace clsim = hplrepro::clsim;
namespace metrics = hplrepro::metrics;

namespace {

void triple(Array<float, 1> data) { data[idx] = 3.0f * data[idx]; }

// Traps at execution time: work-items of one group diverge at a barrier.
void divergent(Array<float, 1> data) {
  if_(lidx < 2) { barrier(LOCAL); } endif_
  data[idx] = 1.0f;
}

class FlightRecorderTest : public ::testing::Test {
protected:
  void SetUp() override {
    clsim::set_async_enabled(true);
    purge_kernel_cache();
    reset_profile();
    metrics::flight_reset_for_test();
  }
  void TearDown() override {
    clsim::set_async_enabled(true);
    metrics::flight_reset_for_test();
  }
};

/// Runs one trapping launch and returns the retained dump. The trap
/// surfaces from eval itself in sync mode and from the next quiescing
/// operation in async mode; either way the worker dumps before rethrowing.
metrics::FlightDump run_trap() {
  constexpr std::size_t n = 8;
  Array<float, 1> bad(n);
  try {
    eval(divergent).global(n).local(4)(bad);
    detail::Runtime::get().finish_all();
    ADD_FAILURE() << "divergent kernel did not trap";
  } catch (const hplrepro::clc::TrapError&) {
  }
  return metrics::flight_last_dump();
}

/// The mode-stable shape of a dump: which spans appear, in which category.
/// Generated kernel names carry a global build counter, so they are
/// normalized; phase marks are ignored because the host's own span *ends*
/// race with the worker-side dump (the begin marks always precede it).
std::set<std::pair<std::string, std::string>> dump_shape(
    const metrics::FlightDump& dump) {
  std::set<std::pair<std::string, std::string>> shape;
  for (const auto& e : dump.entries) {
    std::string name = e.name;
    if (name.rfind("hpl_kernel_", 0) == 0) name = "hpl_kernel_N";
    shape.emplace(std::move(name), e.cat);
  }
  return shape;
}

TEST_F(FlightRecorderTest, CleanRunDumpsNothing) {
  constexpr std::size_t n = 256;
  Array<float, 1> data(n);
  for (std::size_t i = 0; i < n; ++i) data(i) = 1.0f;
  for (int rep = 0; rep < 3; ++rep) eval(triple)(data);
  detail::Runtime::get().finish_all();
  EXPECT_EQ(data(0), 27.0f);

  EXPECT_EQ(metrics::flight_dump_count(), 0u);
  EXPECT_FALSE(metrics::flight_last_dump().dumped);
}

TEST_F(FlightRecorderTest, TrappedAsyncKernelDumpsExactlyOnce) {
  const metrics::FlightDump dump = run_trap();
  EXPECT_EQ(metrics::flight_dump_count(), 1u);
  ASSERT_TRUE(dump.dumped);
  EXPECT_EQ(dump.reason, "kernel command failed");
  EXPECT_FALSE(dump.entries.empty());

  // Entries are in timeline order, and the recent host-side pipeline
  // stages for the failing eval are all present.
  for (std::size_t i = 1; i < dump.entries.size(); ++i) {
    EXPECT_LE(dump.entries[i - 1].ts_us, dump.entries[i].ts_us);
  }
  const auto shape = dump_shape(dump);
  for (const char* span : {"capture", "codegen", "marshal", "launch"}) {
    EXPECT_EQ(shape.count({span, "hpl"}), 1u) << span;
  }
  EXPECT_EQ(shape.count({"hpl_kernel_N", "vm"}), 1u);

  // A second trap in the same process does not dump again: the first
  // post-mortem is the one that matters and must not be overwritten.
  const metrics::FlightDump second = run_trap();
  EXPECT_EQ(metrics::flight_dump_count(), 1u);
  EXPECT_EQ(second.entries.size(), dump.entries.size());
}

TEST_F(FlightRecorderTest, SyncAndAsyncDumpsHaveIdenticalShape) {
  const metrics::FlightDump async_dump = run_trap();
  ASSERT_TRUE(async_dump.dumped);

  metrics::flight_reset_for_test();
  clsim::set_async_enabled(false);
  purge_kernel_cache();
  reset_profile();
  const metrics::FlightDump sync_dump = run_trap();
  ASSERT_TRUE(sync_dump.dumped);

  // Same trigger reason and the same set of (name, cat, phase) marks:
  // HPL_SYNC only changes *when* the host blocks, not what ran.
  EXPECT_EQ(sync_dump.reason, async_dump.reason);
  EXPECT_EQ(dump_shape(sync_dump), dump_shape(async_dump));
}

}  // namespace
