// HPL code generation: structure of the OpenCL C that capture produces —
// signatures, const qualification from access analysis, hidden dimension
// arguments, predefined-variable prologue, control-flow shapes.

#include <gtest/gtest.h>

#include <string>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

// Captures `fn` the way eval does and returns the generated source.
template <typename... Params>
std::string capture_source(void (*fn)(Params...)) {
  detail::KernelBuilder builder;
  {
    detail::CaptureScope scope(builder);
    auto invoke = [&]<std::size_t... Is>(std::index_sequence<Is...>) {
      std::tuple<Params...> formals{
          Params(detail::FormalTag{}, static_cast<int>(Is))...};
      std::apply(fn, formals);
    };
    invoke(std::index_sequence_for<Params...>{});
    builder.check_balanced();
  }
  return detail::generate_kernel_source("test_kernel", builder.params(),
                                        builder.body(),
                                        builder.predefined());
}

void contains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "expected to find '" << needle << "' in:\n"
      << haystack;
}

// --- Kernels under test ----------------------------------------------------------

void saxpy_kernel(Array<double, 1> y, Array<double, 1> x, Double a) {
  y[idx] = a * x[idx] + y[idx];
}

TEST(Codegen, SaxpySignatureAndBody) {
  const std::string src = capture_source(saxpy_kernel);
  contains(src, "__kernel void test_kernel(");
  contains(src, "__global double* p0");        // written -> not const
  contains(src, "__global const double* p1");  // read-only
  contains(src, "double p2");                  // scalar by value
  contains(src, "const size_t idx = get_global_id(0);");
  contains(src, "p0[idx] = ((p2 * p1[idx]) + p0[idx]);");
}

void twod_kernel(Array<float, 2> out, Array<float, 2> in) {
  out[idx][idy] = in[idy][idx];
}

TEST(Codegen, HiddenDimensionArguments) {
  const std::string src = capture_source(twod_kernel);
  contains(src, "uint p0_d1");
  contains(src, "uint p1_d1");
  contains(src, "p0[(idx) * p0_d1 + (idy)]");
  contains(src, "p1[(idy) * p1_d1 + (idx)]");
}

void constant_kernel(Array<float, 1> out, Array<float, 1, Constant> table) {
  out[idx] = table[idx];
}

TEST(Codegen, ConstantAddressSpace) {
  const std::string src = capture_source(constant_kernel);
  contains(src, "__constant float* p1");
}

void local_kernel(Array<float, 1> out) {
  Array<float, 1, Local> scratch(64);
  Array<float, 1> priv(8);
  scratch[lidx] = out[idx];
  priv[0] = scratch[lidx];
  barrier(LOCAL | GLOBAL);
  out[idx] = priv[0];
}

TEST(Codegen, LocalAndPrivateArrays) {
  const std::string src = capture_source(local_kernel);
  contains(src, "__local float v0[64];");
  contains(src, "float v1[8];");
  contains(src, "barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE);");
}

void control_kernel(Array<int, 1> data, Int n) {
  Int i;
  Int acc = 0;
  for_(i = 0, i < n, i++) {
    if_(i % 2 == 0) {
      acc += i;
    } else_ {
      acc -= 1;
    } endif_
  } endfor_
  while_(acc > 100) {
    acc -= 100;
  } endwhile_
  data[idx] = acc;
}

TEST(Codegen, ControlFlowShapes) {
  const std::string src = capture_source(control_kernel);
  contains(src, "for (v0 = 0; (v0 < p1); v0++) {");
  contains(src, "if (((v0 % 2) == 0)) {");
  contains(src, "} else {");
  contains(src, "while ((v1 > 100)) {");
}

void compound_update_kernel(Array<float, 1> a, Int n) {
  Int j;
  for_(j = 0, j < n, j += 4) {
    a[j] *= 2.0f;
  } endfor_
}

TEST(Codegen, CompoundForUpdate) {
  const std::string src = capture_source(compound_update_kernel);
  contains(src, "for (v0 = 0; (v0 < p1); v0 += 4) {");
  contains(src, "a" "");  // no-op; keeps the kernel referenced
  contains(src, "p0[v0] *= 2");
}

void predefined_kernel(Array<int, 1> out) {
  out[idx] = cast<std::int32_t>(lidx + gidx * lszx + szx - ngroupsx);
}

TEST(Codegen, PredefinedVariablesDeclaredOnce) {
  const std::string src = capture_source(predefined_kernel);
  contains(src, "const size_t idx = get_global_id(0);");
  contains(src, "const size_t lidx = get_local_id(0);");
  contains(src, "const size_t gidx = get_group_id(0);");
  contains(src, "const size_t lszx = get_local_size(0);");
  contains(src, "const size_t szx = get_global_size(0);");
  contains(src, "const size_t ngroupsx = get_num_groups(0);");
  // Declared exactly once each.
  EXPECT_EQ(src.find("get_global_id(0)"), src.rfind("get_global_id(0)"));
}

TEST(Codegen, GeneratedSourceCompilesWithClc) {
  // Every generated source above must be accepted by the clc compiler.
  for (const std::string& src :
       {capture_source(saxpy_kernel), capture_source(twod_kernel),
        capture_source(constant_kernel), capture_source(local_kernel),
        capture_source(control_kernel),
        capture_source(compound_update_kernel),
        capture_source(predefined_kernel)}) {
    EXPECT_NO_THROW(hplrepro::clc::compile(src)) << src;
  }
}

void math_kernel(Array<double, 1> out) {
  out[idx] = sqrt(fabs(sin(Expr(1.0)))) + pow(Expr(2.0), Expr(10.0));
}

TEST(Codegen, MathFunctionsPrintAsCalls) {
  const std::string src = capture_source(math_kernel);
  contains(src, "sqrt(fabs(sin(1");
  contains(src, "pow(2");
}

}  // namespace
