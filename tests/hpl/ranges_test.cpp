#include "hpl/ranges.hpp"

#include <gtest/gtest.h>

namespace {

using HPL::detail::ByteRange;
using HPL::detail::RangeSet;

std::vector<ByteRange> runs(const RangeSet& s) { return s.runs(); }

TEST(RangeSetTest, EmptyByDefault) {
  RangeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total(), 0u);
  EXPECT_FALSE(s.covers({0, 1}));
  EXPECT_TRUE(s.covers({5, 5}));  // empty range trivially covered
}

TEST(RangeSetTest, WholeCoversEverything) {
  RangeSet s = RangeSet::whole(100);
  EXPECT_TRUE(s.covers({0, 100}));
  EXPECT_TRUE(s.covers({37, 63}));
  EXPECT_FALSE(s.covers({0, 101}));
  EXPECT_EQ(s.total(), 100u);
  ASSERT_EQ(runs(s).size(), 1u);
  EXPECT_EQ(runs(s)[0], (ByteRange{0, 100}));
}

TEST(RangeSetTest, AddCoalescesAdjacent) {
  RangeSet s;
  s.add({0, 10});
  s.add({10, 20});
  ASSERT_EQ(runs(s).size(), 1u);
  EXPECT_EQ(runs(s)[0], (ByteRange{0, 20}));
}

TEST(RangeSetTest, AddCoalescesOverlapping) {
  RangeSet s;
  s.add({0, 10});
  s.add({30, 40});
  s.add({5, 35});
  ASSERT_EQ(runs(s).size(), 1u);
  EXPECT_EQ(runs(s)[0], (ByteRange{0, 40}));
}

TEST(RangeSetTest, AddKeepsDisjointRunsSorted) {
  RangeSet s;
  s.add({40, 50});
  s.add({0, 10});
  s.add({20, 30});
  ASSERT_EQ(runs(s).size(), 3u);
  EXPECT_EQ(runs(s)[0], (ByteRange{0, 10}));
  EXPECT_EQ(runs(s)[1], (ByteRange{20, 30}));
  EXPECT_EQ(runs(s)[2], (ByteRange{40, 50}));
  EXPECT_EQ(s.total(), 30u);
}

TEST(RangeSetTest, AddEmptyIsNoop) {
  RangeSet s;
  s.add({7, 7});
  EXPECT_TRUE(s.empty());
}

TEST(RangeSetTest, SubtractSplitsRun) {
  RangeSet s = RangeSet::whole(100);
  s.subtract({40, 60});
  ASSERT_EQ(runs(s).size(), 2u);
  EXPECT_EQ(runs(s)[0], (ByteRange{0, 40}));
  EXPECT_EQ(runs(s)[1], (ByteRange{60, 100}));
  EXPECT_FALSE(s.covers({40, 41}));
  EXPECT_TRUE(s.covers({0, 40}));
}

TEST(RangeSetTest, SubtractTrimsEdges) {
  RangeSet s;
  s.add({10, 30});
  s.subtract({0, 15});
  s.subtract({25, 40});
  ASSERT_EQ(runs(s).size(), 1u);
  EXPECT_EQ(runs(s)[0], (ByteRange{15, 25}));
}

TEST(RangeSetTest, SubtractRemovesWholeRuns) {
  RangeSet s;
  s.add({0, 10});
  s.add({20, 30});
  s.subtract({0, 30});
  EXPECT_TRUE(s.empty());
}

TEST(RangeSetTest, MissingReportsGaps) {
  RangeSet s;
  s.add({10, 20});
  s.add({30, 40});
  auto gaps = s.missing({0, 50});
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (ByteRange{0, 10}));
  EXPECT_EQ(gaps[1], (ByteRange{20, 30}));
  EXPECT_EQ(gaps[2], (ByteRange{40, 50}));
}

TEST(RangeSetTest, MissingWhollyCoveredIsEmpty) {
  RangeSet s = RangeSet::whole(64);
  EXPECT_TRUE(s.missing({16, 48}).empty());
}

TEST(RangeSetTest, MissingWhollyUncovered) {
  RangeSet s;
  s.add({100, 200});
  auto gaps = s.missing({0, 50});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (ByteRange{0, 50}));
}

TEST(RangeSetTest, IntersectReturnsCoveredPieces) {
  RangeSet s;
  s.add({10, 20});
  s.add({30, 40});
  auto in = s.intersect({15, 35});
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0], (ByteRange{15, 20}));
  EXPECT_EQ(in[1], (ByteRange{30, 35}));
}

TEST(RangeSetTest, IntersectsPredicate) {
  RangeSet s;
  s.add({10, 20});
  EXPECT_TRUE(s.intersects({19, 25}));
  EXPECT_FALSE(s.intersects({20, 25}));  // half-open: touching is disjoint
  EXPECT_FALSE(s.intersects({0, 10}));
}

TEST(RangeSetTest, DisjointWritersScenario) {
  // Two devices each own half; the host misses everything, then gathers.
  const std::size_t bytes = 1024;
  RangeSet dev0, dev1, host = RangeSet::whole(bytes);
  dev0.add({0, 512});
  host.subtract({0, 512});
  dev1.add({512, 1024});
  host.subtract({512, 1024});
  EXPECT_TRUE(host.empty());
  auto gaps = host.missing({0, bytes});
  ASSERT_EQ(gaps.size(), 1u);
  // Gather piece-wise: dev0 covers the front, dev1 the back.
  auto from0 = dev0.intersect(gaps[0]);
  ASSERT_EQ(from0.size(), 1u);
  EXPECT_EQ(from0[0], (ByteRange{0, 512}));
  host.add(from0[0]);
  auto rest = host.missing({0, bytes});
  ASSERT_EQ(rest.size(), 1u);
  auto from1 = dev1.intersect(rest[0]);
  ASSERT_EQ(from1.size(), 1u);
  EXPECT_EQ(from1[0], (ByteRange{512, 1024}));
  host.add(from1[0]);
  EXPECT_TRUE(host.covers({0, bytes}));
}

}  // namespace
