// Lazy-DAG kernel fusion (ROADMAP item 3): differential tests pinning the
// core guarantee — with fusion on, chained evals produce bit-identical
// results to the eager sequence while launching strictly fewer kernels, and
// the coherence marks (RangeSet validity per copy) end up identical. Plus a
// sabotage self-test proving the differential harness would catch a wrong
// rewrite, deferred-error semantics, and the fusion metrics counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "clsim/runtime.hpp"
#include "hpl/HPL.h"
#include "support/metrics.hpp"

using namespace HPL;

namespace clsim = hplrepro::clsim;
namespace metrics = hplrepro::metrics;

namespace {

// --- Kernels -------------------------------------------------------------------

void plus_one(Array<float, 1> out, Array<float, 1> in) {
  out[idx] = in[idx] + 1.0f;
}

void times_two(Array<float, 1> out, Array<float, 1> in) {
  out[idx] = in[idx] * 2.0f;
}

void transpose_k(Array<float, 2> out, Array<float, 2> in) {
  out[idx][idy] = in[idy][idx];
}

void twod_times_two(Array<float, 2> out, Array<float, 2> in) {
  out[idx][idy] = in[idy][idx] * 2.0f;
}

// Two statements: never eligible for fusion (not a simple map).
void two_statements(Array<float, 1> data) {
  data[idx] = data[idx] + 1.0f;
  data[idx] = data[idx] * 3.0f;
}

class FusionTest : public ::testing::Test {
protected:
  void SetUp() override {
    clsim::set_async_enabled(true);
    set_fusion_enabled(true);
    purge_kernel_cache();
    reset_profile();
  }
  void TearDown() override {
    detail::set_fusion_sabotage_for_test(false);
    set_fusion_enabled(true);
    set_kernel_build_options("");
    clsim::set_async_enabled(true);
  }
};

/// Output + launch count of one run of `body` (which evals and then reads
/// its results, forcing the flush itself).
struct RunResult {
  std::vector<float> out;
  std::uint64_t launches = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

template <typename Body>
RunResult run_case(bool fused, Body&& body) {
  set_fusion_enabled(fused);
  purge_kernel_cache();
  reset_profile();
  RunResult r;
  r.out = body();
  const ProfileSnapshot snap = profile();
  r.launches = snap.kernel_launches;
  r.hits = snap.kernel_cache_hits;
  r.misses = snap.kernel_cache_misses;
  set_fusion_enabled(true);
  return r;
}

void expect_bit_identical(const RunResult& fused, const RunResult& unfused) {
  ASSERT_EQ(fused.out.size(), unfused.out.size());
  for (std::size_t i = 0; i < fused.out.size(); ++i) {
    ASSERT_EQ(fused.out[i], unfused.out[i]) << "element " << i;
  }
}

// --- Map-map fusion ------------------------------------------------------------

TEST_F(FusionTest, MapChainFusesIntoOneLaunch) {
  constexpr std::size_t n = 512;
  auto body = [&] {
    Array<float, 1> a(n), t(n), out(n);
    iota(a);
    eval(plus_one)(t, a);
    eval(times_two)(out, t);
    std::vector<float> result(n);
    for (std::size_t i = 0; i < n; ++i) result[i] = out.get(i);
    return result;
  };
  const RunResult unfused = run_case(false, body);
  const RunResult fused = run_case(true, body);

  EXPECT_EQ(unfused.launches, 3u);
  EXPECT_EQ(fused.launches, 1u);  // iota + both maps merge
  expect_bit_identical(fused, unfused);
  // The cache invariant holds in both modes.
  EXPECT_EQ(unfused.hits + unfused.misses, unfused.launches);
  EXPECT_EQ(fused.hits + fused.misses, fused.launches);
  EXPECT_EQ(fused.out[5], (5.0f + 1.0f) * 2.0f);
}

TEST_F(FusionTest, FusedChainIsACacheHitOnRepeat) {
  constexpr std::size_t n = 128;
  Array<float, 1> a(n), t(n), out(n);
  for (int round = 0; round < 3; ++round) {
    iota(a);
    eval(plus_one)(t, a);
    eval(times_two)(out, t);
    ASSERT_EQ(out.get(7), 16.0f) << "round " << round;
  }
  const ProfileSnapshot snap = profile();
  // Same chain flushed thrice: one synthesized kernel, built once.
  EXPECT_EQ(snap.kernel_launches, 3u);
  EXPECT_EQ(snap.kernels_built, 1u);
  EXPECT_EQ(snap.kernel_cache_misses, 1u);
  EXPECT_EQ(snap.kernel_cache_hits, 2u);
}

TEST_F(FusionTest, DeadTemporaryIsEliminated) {
  constexpr std::size_t n = 256;
  auto body = [&] {
    Array<float, 1> a(n);
    fill(a, 1.0f);  // fully overwritten below, never read
    fill(a, 2.0f);
    std::vector<float> result(n);
    for (std::size_t i = 0; i < n; ++i) result[i] = a.get(i);
    return result;
  };
  const RunResult unfused = run_case(false, body);
  const RunResult fused = run_case(true, body);
  EXPECT_EQ(unfused.launches, 2u);
  EXPECT_EQ(fused.launches, 1u);
  expect_bit_identical(fused, unfused);
  EXPECT_EQ(fused.out[0], 2.0f);
}

// --- Map-reduce fusion ---------------------------------------------------------

TEST_F(FusionTest, MapFeedingReduceFusesIntoOnePass) {
  constexpr std::size_t n = 4096;
  auto body = [&] {
    Array<float, 1> a(n);
    fill(a, 1.5f);
    return std::vector<float>{reduce_sum(a)};
  };
  const RunResult unfused = run_case(false, body);
  const RunResult fused = run_case(true, body);
  EXPECT_EQ(unfused.launches, 2u);
  EXPECT_EQ(fused.launches, 1u);  // fill inlined into the reduction loop
  expect_bit_identical(fused, unfused);
  EXPECT_EQ(fused.out[0], 1.5f * static_cast<float>(n));
}

TEST_F(FusionTest, TwoProducersFeedingDotFuseIntoOnePass) {
  constexpr std::size_t n = 2048;
  auto body = [&] {
    Array<float, 1> a(n), b(n);
    iota(a);
    fill(b, 2.0f);
    return std::vector<float>{dot(a, b)};
  };
  const RunResult unfused = run_case(false, body);
  const RunResult fused = run_case(true, body);
  EXPECT_EQ(unfused.launches, 3u);
  EXPECT_EQ(fused.launches, 1u);  // iota + fill + dot in one pass
  expect_bit_identical(fused, unfused);
}

// --- Transpose sinking ---------------------------------------------------------

TEST_F(FusionTest, TransposeSinksIntoConsumer) {
  constexpr std::size_t n = 24;  // square, as the rule requires
  auto body = [&] {
    Array<float, 2> src(n, n), t(n, n), out(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        src(i, j) = static_cast<float>(i * n + j);
      }
    }
    eval(transpose_k)(t, src);     // t = src^T
    eval(twod_times_two)(out, t);  // out = 2 * t^T (= 2 * src)
    std::vector<float> result;
    result.reserve(n * n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) result.push_back(out(i, j));
    }
    return result;
  };
  const RunResult unfused = run_case(false, body);
  const RunResult fused = run_case(true, body);
  EXPECT_EQ(unfused.launches, 2u);
  EXPECT_EQ(fused.launches, 1u);
  expect_bit_identical(fused, unfused);
  EXPECT_EQ(fused.out[n + 2], 2.0f * static_cast<float>(n + 2));
}

// --- Legality guards -----------------------------------------------------------

TEST_F(FusionTest, MismatchedRangesDoNotFuse) {
  auto body = [&] {
    Array<float, 1> a(256), b(128);
    fill(a, 1.0f);
    fill(b, 2.0f);  // different NDRange: must stay separate
    return std::vector<float>{a.get(0), b.get(0)};
  };
  const RunResult fused = run_case(true, body);
  EXPECT_EQ(fused.launches, 2u);
  EXPECT_EQ(fused.out[0], 1.0f);
  EXPECT_EQ(fused.out[1], 2.0f);
}

TEST_F(FusionTest, MultiStatementKernelsDoNotFuse) {
  auto body = [&] {
    Array<float, 1> a(64);
    fill(a, 1.0f);
    eval(two_statements)(a);  // not a simple map: closes the group
    eval(two_statements)(a);
    std::vector<float> result(64);
    for (std::size_t i = 0; i < 64; ++i) result[i] = a.get(i);
    return result;
  };
  const RunResult unfused = run_case(false, body);
  const RunResult fused = run_case(true, body);
  EXPECT_EQ(unfused.launches, 3u);
  EXPECT_EQ(fused.launches, 3u);
  expect_bit_identical(fused, unfused);
  EXPECT_EQ(fused.out[0], 21.0f);  // ((1+1)*3+1)*3
}

TEST_F(FusionTest, InterveningReadForcesTheProducer) {
  // A host read between two fusable evals is a forcing point: the first
  // eval must have launched by the time the read returns.
  Array<float, 1> a(128), t(128);
  fill(a, 3.0f);
  EXPECT_EQ(a.get(0), 3.0f);  // forces the fill
  EXPECT_EQ(profile().kernel_launches, 1u);
  eval(plus_one)(t, a);
  EXPECT_EQ(t.get(0), 4.0f);
  EXPECT_EQ(profile().kernel_launches, 2u);
}

// --- Coherence identity --------------------------------------------------------

TEST_F(FusionTest, RangeSetValidityMatchesUnfusedSequence) {
  constexpr std::size_t n = 256;
  auto marks = [](Array<float, 1>& arr) {
    std::vector<detail::ByteRange> out;
    out.insert(out.end(), arr.impl()->host_valid.runs().begin(),
               arr.impl()->host_valid.runs().end());
    for (const auto& [spec, copy] : arr.impl()->copies) {
      out.insert(out.end(), copy.valid.runs().begin(),
                 copy.valid.runs().end());
    }
    return out;
  };

  std::vector<std::vector<detail::ByteRange>> per_mode;
  for (const bool fused : {false, true}) {
    set_fusion_enabled(fused);
    purge_kernel_cache();
    reset_profile();
    Array<float, 1> a(n), t(n), out(n);
    iota(a);
    eval(plus_one)(t, a);
    eval(times_two)(out, t);
    (void)out.get(0);  // force + sync the output
    detail::Runtime::get().finish_all();
    // Every copy of every array (including the intermediate, whose store
    // fusion keeps) must carry identical validity marks in both modes.
    std::vector<detail::ByteRange> all;
    for (Array<float, 1>* arr : {&a, &t, &out}) {
      const auto m = marks(*arr);
      all.insert(all.end(), m.begin(), m.end());
    }
    per_mode.push_back(std::move(all));
  }
  ASSERT_EQ(per_mode[0].size(), per_mode[1].size());
  for (std::size_t i = 0; i < per_mode[0].size(); ++i) {
    EXPECT_EQ(per_mode[0][i], per_mode[1][i]) << "mark " << i;
  }
}

// --- The full configuration matrix ---------------------------------------------

TEST_F(FusionTest, FusedMatchesUnfusedAcrossInterpAndOptAndSyncMatrix) {
  constexpr std::size_t n = 1024;
  auto body = [&] {
    Array<float, 1> a(n), t(n), out(n), b(n);
    iota(a);
    eval(plus_one)(t, a);
    eval(times_two)(out, t);
    fill(b, 0.5f);
    const float d = dot(out, b);
    std::vector<float> result(n);
    for (std::size_t i = 0; i < n; ++i) result[i] = out.get(i);
    result.push_back(d);
    return result;
  };

  for (const bool async : {true, false}) {
    for (const char* opts : {"-O0", "-O2"}) {
      for (const char* interp : {"stack", "threaded"}) {
        SCOPED_TRACE(std::string(interp) + " " + opts +
                     (async ? " async" : " sync"));
        clsim::set_async_enabled(async);
        set_kernel_build_options(std::string("-cl-interp=") + interp + " " +
                                 opts);
        const RunResult unfused = run_case(false, body);
        const RunResult fused = run_case(true, body);
        // The map group (iota/+1/*2/fill) inlines into the dot's reduction
        // loop: the whole 5-launch chain becomes a single pass.
        EXPECT_EQ(unfused.launches, 5u);
        EXPECT_EQ(fused.launches, 1u);
        expect_bit_identical(fused, unfused);
      }
    }
  }
}

// --- Sabotage self-test --------------------------------------------------------

TEST_F(FusionTest, SabotagedRewriteIsCaughtByTheDifferential) {
  // Deliberately mis-synthesize map-map fusion (+1 on the fused temporary)
  // and check the differential harness actually trips on it. A rewrite bug
  // must never survive this suite silently.
  constexpr std::size_t n = 64;
  auto body = [&] {
    Array<float, 1> a(n), t(n), out(n);
    fill(a, 1.0f);
    eval(plus_one)(t, a);
    eval(times_two)(out, t);
    std::vector<float> result(n);
    for (std::size_t i = 0; i < n; ++i) result[i] = out.get(i);
    return result;
  };
  const RunResult unfused = run_case(false, body);

  detail::set_fusion_sabotage_for_test(true);
  const RunResult fused = run_case(true, body);
  detail::set_fusion_sabotage_for_test(false);

  EXPECT_LT(fused.launches, unfused.launches);  // it did fuse...
  std::size_t mismatches = 0;
  ASSERT_EQ(fused.out.size(), unfused.out.size());
  for (std::size_t i = 0; i < fused.out.size(); ++i) {
    if (fused.out[i] != unfused.out[i]) ++mismatches;
  }
  EXPECT_GT(mismatches, 0u) << "sabotaged rewrite went undetected — the "
                               "differential would miss real fusion bugs";

  // And with the sabotage off the same chain is bit-identical again.
  const RunResult clean = run_case(true, body);
  expect_bit_identical(clean, unfused);
}

// --- Error semantics and toggles -----------------------------------------------

TEST_F(FusionTest, DeferredLaunchErrorSurfacesAtForcingPoint) {
  Array<float, 1> out(10);
  // global 10 % local 3 != 0: the eager path throws from eval() itself;
  // deferred, the record succeeds and the error surfaces at the flush.
  EXPECT_NO_THROW(eval(times_two).global(10).local(3)(out, out));
  EXPECT_THROW(flush(), hplrepro::Error);
  // The failed batch is consumed: the next flush is clean.
  EXPECT_NO_THROW(flush());
}

TEST_F(FusionTest, BuildOptionTokenDrivesTheToggle) {
  EXPECT_TRUE(fusion_enabled());
  set_kernel_build_options("-cl-fusion=off");
  EXPECT_FALSE(fusion_enabled());
  // Options without a fusion token leave the toggle alone.
  set_kernel_build_options("-O2");
  EXPECT_FALSE(fusion_enabled());
  set_kernel_build_options("-O2 -cl-fusion=on");
  EXPECT_TRUE(fusion_enabled());
  set_kernel_build_options("");
  EXPECT_TRUE(fusion_enabled());
}

TEST_F(FusionTest, ScopedDisableRestoresAndFlushes) {
  Array<float, 1> a(32);
  fill(a, 1.0f);  // deferred
  {
    ScopedFusionDisable off;
    EXPECT_FALSE(fusion_enabled());
    // Entering the scope flushed the pending fill.
    EXPECT_EQ(profile().kernel_launches, 1u);
  }
  EXPECT_TRUE(fusion_enabled());
}

// --- Metrics counters ----------------------------------------------------------

TEST_F(FusionTest, FusionCountersReconcile) {
  metrics::set_enabled(true);
  metrics::reset();
  constexpr std::size_t n = 512;
  Array<float, 1> a(n), t(n), out(n);
  iota(a);
  eval(plus_one)(t, a);
  eval(times_two)(out, t);
  flush();
  metrics::set_enabled(false);

  const metrics::Snapshot snap = metrics::snapshot();
  auto value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  EXPECT_EQ(value("fusion.dag_flushes"), 1u);
  EXPECT_EQ(value("fusion.unfused_launches"), 3u);
  EXPECT_EQ(value("fusion.actual_launches"), 1u);
  EXPECT_EQ(value("fusion.launches_saved"),
            value("fusion.unfused_launches") -
                value("fusion.actual_launches"));
  EXPECT_GE(value("fusion.rules_applied"), 2u);
  // Two intermediate loads eliminated, n floats each.
  EXPECT_EQ(value("fusion.bytes_traffic_saved"),
            2u * n * sizeof(float));
}

// --- Concurrency (TSAN food) ---------------------------------------------------

TEST_F(FusionTest, ConcurrentChainsAndFlushesAreSafe) {
  constexpr std::size_t n = 256;
  constexpr int kIters = 25;
  auto worker = [&](float seed, std::vector<float>& sink) {
    Array<float, 1> a(n), t(n), out(n);
    for (int i = 0; i < kIters; ++i) {
      fill(a, seed);
      eval(plus_one)(t, a);
      eval(times_two)(out, t);
      sink.push_back(out.get(static_cast<std::size_t>(i) % n));
    }
  };
  std::vector<float> got1, got2;
  std::thread t1([&] { worker(1.0f, got1); });
  std::thread t2([&] { worker(2.0f, got2); });
  t1.join();
  t2.join();
  for (float v : got1) EXPECT_EQ(v, 4.0f);
  for (float v : got2) EXPECT_EQ(v, 6.0f);
}

}  // namespace
