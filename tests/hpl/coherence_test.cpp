// HPL coherence and transfer minimisation (paper §V-B / §VI: HPL analyzes
// kernels "to decide which data transfers between memories will be
// needed"). The profile counters expose exactly what moved.

#include <gtest/gtest.h>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

void writer(Array<float, 1> out) { out[idx] = 1.0f; }
void reader(Array<float, 1> in, Array<float, 1> out) { out[idx] = in[idx]; }
void incr(Array<float, 1> data) { data[idx] = data[idx] + 1.0f; }

class CoherenceTest : public ::testing::Test {
protected:
  void SetUp() override { reset_profile(); }
};

TEST_F(CoherenceTest, WriteOnlyArgumentIsNotUploaded) {
  Array<float, 1> out(1024);
  const auto before = profile();
  eval(writer)(out);
  const auto after = profile();
  // `out` is only written by the kernel: nothing must travel host->device.
  EXPECT_EQ(after.bytes_to_device - before.bytes_to_device, 0u);
  EXPECT_EQ(out(0), 1.0f);  // read-back happens lazily on host access
}

TEST_F(CoherenceTest, ReadArgumentUploadedExactlyOnce) {
  ScopedFusionDisable fusion_off;  // exact per-eval hit counts below
  Array<float, 1> in(1024), out(1024);
  for (std::size_t i = 0; i < 1024; ++i) in(i) = 2.0f;

  const auto before = profile();
  eval(reader)(in, out);
  eval(reader)(in, out);
  eval(reader)(in, out);
  const auto after = profile();
  // `in` changed on the host once; three launches need exactly one upload.
  EXPECT_EQ(after.bytes_to_device - before.bytes_to_device,
            1024 * sizeof(float));
  EXPECT_EQ(out(5), 2.0f);
  // Repeat launches are kernel-cache hits; at most the first is a miss.
  EXPECT_GE(after.kernel_cache_hits - before.kernel_cache_hits, 2u);
  EXPECT_EQ(after.kernel_cache_hits + after.kernel_cache_misses,
            after.kernel_launches);
}

TEST_F(CoherenceTest, DeviceResidentDataNeverRetransfers) {
  Array<float, 1> data(256);
  for (std::size_t i = 0; i < 256; ++i) data(i) = 0.0f;

  eval(incr)(data);  // upload once (read+write kernel)
  const auto mid = profile();
  for (int i = 0; i < 10; ++i) eval(incr)(data);
  const auto after = profile();
  EXPECT_EQ(after.bytes_to_device - mid.bytes_to_device, 0u);
  EXPECT_EQ(after.bytes_to_host - mid.bytes_to_host, 0u);

  EXPECT_EQ(data(0), 11.0f);  // one read-back, on this host access
  const auto final_profile = profile();
  EXPECT_EQ(final_profile.bytes_to_host - after.bytes_to_host,
            256 * sizeof(float));
}

TEST_F(CoherenceTest, HostWriteInvalidatesDeviceCopy) {
  Array<float, 1> data(64);
  for (std::size_t i = 0; i < 64; ++i) data(i) = 0.0f;

  eval(incr)(data);       // device now has 1.0
  data(0) = 100.0f;       // host access syncs back AND invalidates device
  const auto before = profile();
  eval(incr)(data);       // must re-upload the modified host copy
  const auto after = profile();
  EXPECT_EQ(after.bytes_to_device - before.bytes_to_device,
            64 * sizeof(float));
  EXPECT_EQ(data(0), 101.0f);
  EXPECT_EQ(data(1), 2.0f);
}

TEST_F(CoherenceTest, GetDoesNotInvalidateDeviceCopy) {
  Array<float, 1> data(64);
  eval(writer)(data);
  EXPECT_EQ(data.get(3), 1.0f);  // read-only host view

  const auto before = profile();
  eval(incr)(data);  // device copy still valid: no upload
  const auto after = profile();
  EXPECT_EQ(after.bytes_to_device - before.bytes_to_device, 0u);
  EXPECT_EQ(data.get(3), 2.0f);
}

TEST_F(CoherenceTest, TwoDevicesInvalidateEachOther) {
  const Device tesla = *Device::by_name("Tesla");
  const Device quadro = *Device::by_name("Quadro");

  Array<float, 1> data(128);
  for (std::size_t i = 0; i < 128; ++i) data(i) = 0.0f;

  eval(incr).device(tesla)(data);   // tesla copy = 1
  eval(incr).device(quadro)(data);  // must sync through host, quadro = 2
  eval(incr).device(tesla)(data);   // back to tesla = 3
  EXPECT_EQ(data(0), 3.0f);
}

TEST_F(CoherenceTest, WrappedHostStorageIsRespected) {
  // Paper: Array(n, ptr) wraps caller-owned memory.
  float raw[16];
  for (float& v : raw) v = 5.0f;
  Array<float, 1> data(16, raw);
  eval(incr)(data);
  EXPECT_EQ(data(2), 6.0f);
  // The result landed in the caller's storage.
  EXPECT_EQ(raw[2], 6.0f);
}

TEST_F(CoherenceTest, KernelBinaryReusedAcrossInvocations) {
  ScopedFusionDisable fusion_off;  // exact launch counts below
  purge_kernel_cache();
  reset_profile();
  Array<float, 1> data(32);
  eval(incr)(data);
  eval(incr)(data);
  eval(incr)(data);
  const auto prof = profile();
  EXPECT_EQ(prof.kernels_built, 1u);   // capture + build happened once
  EXPECT_EQ(prof.kernel_launches, 3u);
}

// --- Region-granular coherence (validity is tracked per byte range, so a
// co-executed array can live split across devices without false sharing) ---

TEST_F(CoherenceTest, SplitWriteGathersEachRegionFromItsOwner) {
  const Device tesla = *Device::by_name("Tesla");
  const Device quadro = *Device::by_name("Quadro");

  Array<float, 1> out(4096);
  eval(writer).devices({tesla, quadro})(out);

  const auto before = profile();
  float sum = 0.0f;
  for (std::size_t i = 0; i < 4096; ++i) sum += out.get(i);
  const auto after = profile();
  EXPECT_EQ(sum, 4096.0f);
  // Each device holds only the region it wrote; the host gather must move
  // every byte exactly once, and nothing device-to-device.
  EXPECT_EQ(after.bytes_to_host - before.bytes_to_host,
            4096 * sizeof(float));
  EXPECT_EQ(after.bytes_device_to_device, before.bytes_device_to_device);
}

TEST_F(CoherenceTest, CrossDeviceMergeUsesDeviceToDeviceTransfers) {
  const Device tesla = *Device::by_name("Tesla");
  const Device quadro = *Device::by_name("Quadro");

  Array<float, 1> data(4096);
  for (std::size_t i = 0; i < 4096; ++i) data(i) = 0.0f;

  // Split increment: each device ends up owning half the array.
  eval(incr).devices({tesla, quadro})(data);

  // A whole-array launch on Tesla needs Quadro's half. The host copy is
  // stale, so the merge must come straight from Quadro's buffer — no
  // host round-trip, no re-upload.
  const auto mid = profile();
  eval(incr).device(tesla)(data);
  const auto after = profile();
  EXPECT_EQ(after.bytes_device_to_device - mid.bytes_device_to_device,
            2048 * sizeof(float));
  EXPECT_EQ(after.bytes_to_host - mid.bytes_to_host, 0u);
  EXPECT_EQ(after.bytes_to_device - mid.bytes_to_device, 0u);

  EXPECT_EQ(data(0), 2.0f);
  EXPECT_EQ(data(2047), 2.0f);
  EXPECT_EQ(data(2048), 2.0f);
  EXPECT_EQ(data(4095), 2.0f);
}

TEST_F(CoherenceTest, ResizeRescuesTheSoleValidDeviceCopy) {
  // Regression: when an array is resized while a device buffer holds the
  // only valid copy, Runtime::device_copy used to drop the old buffer and
  // lose the data. It must sync the still-addressable bytes back to the
  // host before recreating the buffer.
  // Eager launches only: the test mutates impl dims between evals, which
  // a deferred first eval (recorded with the original extent) would trip
  // over — by-hand impl surgery is outside the DAG's coherence hooks.
  ScopedFusionDisable fusion_off;
  Array<float, 1> a(256);
  eval(writer)(a);  // device copy = 1.0f everywhere; host copy stale

  a.impl()->dims[0] = 128;  // shrink in place; host storage stays allocated

  const auto before = profile();
  eval(incr)(a);  // device_copy sees the size mismatch mid-bind
  const auto after = profile();
  // The rescue pulls the surviving extent (128 floats) back to the host...
  EXPECT_EQ(after.bytes_to_host - before.bytes_to_host,
            128 * sizeof(float));
  // ...and the relaunch re-uploads it into the fresh, smaller buffer.
  EXPECT_EQ(after.bytes_to_device - before.bytes_to_device,
            128 * sizeof(float));
  for (std::size_t i = 0; i < 128; ++i) {
    ASSERT_EQ(a.get(i), 2.0f) << "lost rescued byte at " << i;
  }
}

TEST_F(CoherenceTest, SeparateDevicesBuildSeparateBinaries) {
  purge_kernel_cache();
  reset_profile();
  Array<float, 1> data(32);
  eval(incr).device(*Device::by_name("Tesla"))(data);
  eval(incr).device(*Device::by_name("Quadro"))(data);
  eval(incr).device(*Device::by_name("Tesla"))(data);
  const auto prof = profile();
  EXPECT_EQ(prof.kernels_built, 2u);  // one binary per device, then cached
}

}  // namespace
