// The metrics layer seen from HPL: eval-latency histograms and cache
// counters reconcile with the always-on profiler, every recorded critical
// path partitions its eval's latency exactly, and the exported JSON is the
// well-formed "hplrepro-metrics-v1" document.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "clsim/runtime.hpp"
#include "hpl/HPL.h"
#include "support/metrics.hpp"

using namespace HPL;

namespace clsim = hplrepro::clsim;
namespace metrics = hplrepro::metrics;

namespace {

void saxpy(Array<float, 1> y, Array<float, 1> x, Float a) {
  y[idx] = a * x[idx] + y[idx];
}

void triple(Array<float, 1> data) { data[idx] = 3.0f * data[idx]; }

class MetricsEvalTest : public ::testing::Test {
protected:
  void SetUp() override {
    clsim::set_async_enabled(true);
    purge_kernel_cache();
    reset_profile();
    metrics::set_enabled(true);
    metrics::reset();
  }
  void TearDown() override {
    metrics::set_enabled(false);
    clsim::set_async_enabled(true);
  }
};

std::uint64_t counter_value(const metrics::Snapshot& snap,
                            const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const metrics::HistogramSnapshot* find_hist(const metrics::Snapshot& snap,
                                            const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void run_mixed_workload(std::uint64_t reps) {
  const Device tesla = *Device::by_name("Tesla");
  const Device quadro = *Device::by_name("Quadro");
  constexpr std::size_t n = 2048;
  Array<float, 1> a(n), b(n), xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i) = 1.0f;
    b(i) = 2.0f;
    xs(i) = 0.5f;
  }
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    eval(saxpy).device(tesla)(a, xs, 2.0f);
    eval(triple).device(quadro)(b);
  }
  detail::Runtime::get().finish_all();
}

TEST_F(MetricsEvalTest, LatencyHistogramAndCountersMatchProfiler) {
  constexpr std::uint64_t reps = 10;
  run_mixed_workload(reps);

  const ProfileSnapshot prof = profile();
  ASSERT_EQ(prof.kernel_launches, 2 * reps);

  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_EQ(counter_value(snap, "hpl.eval.launches"), prof.kernel_launches);
  EXPECT_EQ(counter_value(snap, "hpl.cache.hit"), prof.kernel_cache_hits);
  EXPECT_EQ(counter_value(snap, "hpl.cache.miss"), prof.kernel_cache_misses);

  // Every launch contributes exactly one end-to-end latency sample, and
  // the bucket counts account for all of them.
  const metrics::HistogramSnapshot* latency =
      find_hist(snap, "hpl.eval.latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, prof.kernel_launches);
  std::uint64_t bucket_sum = 0;
  for (const auto& [lo, count] : latency->buckets) bucket_sum += count;
  EXPECT_EQ(bucket_sum, latency->count);
  EXPECT_GT(latency->sum, 0.0);
  EXPECT_LE(latency->p50, latency->p99);

  // The host-side cost histogram sees the same launches.
  const metrics::HistogramSnapshot* host = find_hist(snap, "hpl.eval.host_ns");
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->count, prof.kernel_launches);
}

TEST_F(MetricsEvalTest, CriticalPathsPartitionEveryEvalExactly) {
  constexpr std::uint64_t reps = 8;
  run_mixed_workload(reps);

  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.critical_path_totals.evals, 2 * reps);
  ASSERT_EQ(snap.critical_paths.size(), 2 * reps);

  double recent_total = 0;
  for (const metrics::CriticalPath& p : snap.critical_paths) {
    EXPECT_FALSE(p.kernel.empty());
    EXPECT_FALSE(p.device.empty());
    EXPECT_GE(p.host_prep_us, 0.0);
    EXPECT_GE(p.queue_wait_us, 0.0);
    EXPECT_GE(p.transfer_us, 0.0);
    EXPECT_GE(p.kernel_us, 0.0);
    EXPECT_NEAR(
        p.host_prep_us + p.queue_wait_us + p.transfer_us + p.kernel_us,
        p.total_us, 1e-6)
        << p.kernel << " on " << p.device;
    recent_total += p.total_us;
  }
  // With fewer evals than the recent-list bound, the running totals are
  // exactly the sum over the recent entries.
  EXPECT_NEAR(snap.critical_path_totals.total_us, recent_total, 1e-6);
}

TEST_F(MetricsEvalTest, MetricsWriteProducesSchemaDocument) {
  run_mixed_workload(4);

  const std::string path = ::testing::TempDir() + "metrics_eval_test.json";
  ASSERT_TRUE(HPL::metrics_write(path));

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string json = buffer.str();

  for (const char* needle :
       {"\"schema\": \"hplrepro-metrics-v1\"", "hpl.eval.latency_ns",
        "\"critical_path\"", "\"flight_recorder\"",
        "queue.SimTesla C2050.depth", "vm.launches"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  // Structurally sound: braces and brackets balance.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{') ++braces;
    else if (ch == '}') --braces;
    else if (ch == '[') ++brackets;
    else if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  EXPECT_FALSE(HPL::metrics_write("/nonexistent-dir/metrics.json"));
}

TEST_F(MetricsEvalTest, ReportIsNanFreeEvenBeforeAnyEval) {
  const std::string report = HPL::metrics_report();
  EXPECT_FALSE(report.empty());
  EXPECT_EQ(report.find("nan"), std::string::npos);
  EXPECT_EQ(report.find("inf"), std::string::npos);

  run_mixed_workload(2);
  const std::string after = HPL::metrics_report();
  EXPECT_NE(after.find("hpl.eval.latency_ns"), std::string::npos);
  EXPECT_EQ(after.find("nan"), std::string::npos);
  EXPECT_EQ(after.find("inf"), std::string::npos);
}

}  // namespace
