// Trace/observability layer: a small eval sequence must produce valid
// Chrome trace JSON with one span per pipeline stage, tracing must be
// inert when disabled, and the profiler registry must reconcile exactly
// with the ProfileSnapshot counters.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "hpl/HPL.h"
#include "support/trace.hpp"

using namespace HPL;
namespace trace = hplrepro::trace;

namespace {

void reader(Array<float, 1> in, Array<float, 1> out) { out[idx] = in[idx]; }
void scale2(Array<float, 1> data, Float a) { data[idx] = a * data[idx]; }

// --- Minimal JSON validator (recursive descent, values discarded) --------

class JsonValidator {
public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::reset();
    purge_kernel_cache();
    reset_profile();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
  }
};

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  if (std::getenv("HPL_TRACE") == nullptr) {
    EXPECT_TRUE(trace::output_path().empty());
  }
  Array<float, 1> in(256), out(256);
  for (std::size_t i = 0; i < 256; ++i) in(i) = 1.0f;
  eval(reader)(in, out);
  eval(reader)(in, out);
  EXPECT_EQ(trace::event_count(), 0u);
}

TEST_F(TraceTest, DisabledTracingDoesNotPerturbCounters) {
  // The same deterministic workload must produce bit-identical simulated
  // counters with tracing off and on: observability is non-perturbing.
  auto run_workload = [] {
    purge_kernel_cache();
    reset_profile();
    Array<float, 1> data(512);
    for (std::size_t i = 0; i < 512; ++i) data(i) = 2.0f;
    eval(scale2)(data, 3.0f);
    eval(scale2)(data, 3.0f);
    (void)data(0);  // force read-back
    return profile();
  };

  trace::set_enabled(false);
  const ProfileSnapshot off = run_workload();
  trace::set_enabled(true);
  const ProfileSnapshot on = run_workload();
  trace::set_enabled(false);

  EXPECT_EQ(off.kernel_launches, on.kernel_launches);
  EXPECT_EQ(off.kernels_built, on.kernels_built);
  EXPECT_EQ(off.kernel_cache_hits, on.kernel_cache_hits);
  EXPECT_EQ(off.bytes_to_device, on.bytes_to_device);
  EXPECT_EQ(off.bytes_to_host, on.bytes_to_host);
  EXPECT_DOUBLE_EQ(off.kernel_sim_seconds, on.kernel_sim_seconds);
  EXPECT_DOUBLE_EQ(off.transfer_sim_seconds, on.transfer_sim_seconds);
}

TEST_F(TraceTest, ColdEvalEmitsOneSpanPerPipelineStage) {
  trace::set_enabled(true);

  Array<float, 1> in(256), out(256);
  for (std::size_t i = 0; i < 256; ++i) in(i) = 4.0f;
  eval(reader)(in, out);  // cold: capture+codegen+build+transfer+launch
  EXPECT_EQ(out(10), 4.0f);  // d2h read-back

  std::set<std::string> names;
  std::set<std::string> sim_tracks;
  for (const auto& ev : trace::snapshot()) {
    names.insert(ev.name);
    if (ev.simulated) sim_tracks.insert(ev.track);
    EXPECT_GE(ev.dur_us, 0.0) << ev.name;
  }
  EXPECT_TRUE(names.count("capture"));
  EXPECT_TRUE(names.count("codegen"));
  EXPECT_TRUE(names.count("build"));
  EXPECT_TRUE(names.count("marshal"));
  EXPECT_TRUE(names.count("transfer:h2d"));
  EXPECT_TRUE(names.count("transfer:d2h"));
  EXPECT_TRUE(names.count("launch"));
  // The simulated-device timeline track is present too.
  EXPECT_FALSE(sim_tracks.empty());
}

TEST_F(TraceTest, ChromeTraceExportIsValidJson) {
  trace::set_enabled(true);

  Array<float, 1> in(128), out(128);
  for (std::size_t i = 0; i < 128; ++i) in(i) = 1.5f;
  eval(reader)(in, out);
  eval(reader)(in, out);
  (void)out(0);

  const std::string path = "trace_test_out.json";
  std::remove(path.c_str());
  ASSERT_TRUE(trace::write_chrome_trace(path));

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  std::remove(path.c_str());

  EXPECT_TRUE(JsonValidator(text).valid()) << text.substr(0, 400);
  // Every event is a complete ("X") or metadata ("M") record — no
  // unbalanced B/E pairs by construction.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"capture\""), std::string::npos);
  EXPECT_NE(text.find("\"launch\""), std::string::npos);
  EXPECT_EQ(text.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_EQ(text.find("\"ph\":\"E\""), std::string::npos);
}

TEST_F(TraceTest, ProfilerReportReconcilesWithSnapshot) {
  // The report must list the eager per-eval kernels by name ("hpl_kernel_"
  // rows); fused launches report under synthesized "hpl_fused_" names.
  ScopedFusionDisable fusion_off;
  Array<float, 1> in(256), out(256);
  for (std::size_t i = 0; i < 256; ++i) in(i) = 1.0f;
  eval(reader)(in, out);
  eval(reader)(in, out);
  Array<float, 1> data(256);
  eval(scale2)(data, 2.0f);

  const ProfileSnapshot snap = profile();
  double kernel_sum = 0;
  std::uint64_t launches = 0, hits = 0, builds = 0;
  for (const auto& k : kernel_profiles()) {
    kernel_sum += k.sim.total_s;
    launches += k.launches;
    hits += k.cache_hits;
    builds += k.builds;
  }
  EXPECT_NEAR(kernel_sum, snap.kernel_sim_seconds, 1e-9);
  EXPECT_EQ(launches, snap.kernel_launches);
  EXPECT_EQ(hits, snap.kernel_cache_hits);
  EXPECT_EQ(builds, snap.kernels_built);

  double transfer_sum = 0;
  for (const auto& t : transfer_profiles()) transfer_sum += t.sim_seconds;
  EXPECT_NEAR(transfer_sum, snap.transfer_sim_seconds, 1e-9);

  const std::string report = profiler_report();
  EXPECT_NE(report.find("HPL profiler report"), std::string::npos);
  EXPECT_NE(report.find("hpl_kernel_"), std::string::npos);
  EXPECT_NE(report.find("device kernels (simulated)"), std::string::npos);
}

TEST_F(TraceTest, ResetProfileClearsTheRegistry) {
  Array<float, 1> data(64);
  eval(scale2)(data, 2.0f);
  ASSERT_FALSE(kernel_profiles().empty());
  reset_profile();
  EXPECT_TRUE(kernel_profiles().empty());
  EXPECT_TRUE(transfer_profiles().empty());
}

}  // namespace
