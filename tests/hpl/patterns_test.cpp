// The computation-pattern library (the paper's §VII future-work feature):
// correctness of every pattern against host arithmetic, kernel-cache reuse
// across calls, and portability across devices.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "hpl/HPL.h"
#include "hpl/patterns.hpp"

using namespace HPL;

namespace {

TEST(Patterns, FillAndIota) {
  Array<float, 1> a(100);
  fill(a, 3.5f);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.get(i), 3.5f);

  Array<int, 1> b(100);
  iota(b);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(b.get(i), i);
}

TEST(Patterns, AxpyMatchesPaperSaxpy) {
  constexpr std::size_t n = 512;
  Array<double, 1> x(n), y(n);
  iota(x);
  fill(y, 1.0);
  axpy(y, x, 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(y.get(i), 2.0 * double(i) + 1.0) << i;
  }
}

TEST(Patterns, ElementwiseOps) {
  constexpr std::size_t n = 64;
  Array<float, 1> a(n), b(n), out(n);
  iota(a);
  fill(b, 2.0f);

  add(out, a, b);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out.get(i), float(i) + 2.0f);
  sub(out, a, b);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out.get(i), float(i) - 2.0f);
  mul(out, a, b);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out.get(i), float(i) * 2.0f);
  div(out, a, b);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out.get(i), float(i) / 2.0f);
}

TEST(Patterns, ScaleInPlace) {
  Array<float, 1> a(32);
  fill(a, 4.0f);
  scale(a, 0.25f);
  for (int i = 0; i < 32; ++i) ASSERT_EQ(a.get(i), 1.0f);
}

TEST(Patterns, ReduceSumMatchesHost) {
  constexpr std::size_t n = 100000;
  Array<float, 1> a(n);
  iota(a);
  const double expected = double(n - 1) * double(n) / 2.0;
  EXPECT_NEAR(reduce_sum(a), expected, expected * 1e-5);
}

TEST(Patterns, ReduceSumSmallerThanGrid) {
  // n far below the fixed reduction grid exercises the grid-stride guard.
  Array<int, 1> a(10);
  iota(a);
  EXPECT_EQ(reduce_sum(a), 45);
}

TEST(Patterns, DotProduct) {
  constexpr std::size_t n = 4096;
  Array<double, 1> a(n), b(n);
  fill(a, 0.5);
  iota(b);
  const double expected = 0.5 * double(n - 1) * double(n) / 2.0;
  EXPECT_NEAR(dot(a, b), expected, std::abs(expected) * 1e-12);
}

TEST(Patterns, KernelsCachedPerElementType) {
  // Exact per-eval build/launch counts: the repeated fills would
  // otherwise collapse under dead-temp elimination + fusion.
  ScopedFusionDisable fusion_off;
  purge_kernel_cache();
  reset_profile();
  Array<float, 1> f(16);
  Array<double, 1> d(16);
  fill(f, 1.0f);
  fill(f, 2.0f);
  fill(d, 1.0);
  fill(d, 2.0);
  // One build per element-type instantiation, reused afterwards.
  EXPECT_EQ(profile().kernels_built, 2u);
  EXPECT_EQ(profile().kernel_launches, 4u);
}

TEST(Patterns, RunOnEveryDevice) {
  for (const Device& device : Device::all()) {
    Array<float, 1> a(256);
    iota(a, device);
    scale(a, 2.0f, device);
    EXPECT_NEAR(reduce_sum(a, device), 2.0f * 255.0f * 128.0f, 1.0f)
        << device.name();
  }
}

TEST(Patterns, ChainedPatternsStayDeviceResident) {
  reset_profile();
  Array<float, 1> a(1 << 14), b(1 << 14), c(1 << 14);
  iota(a);
  fill(b, 1.0f);
  add(c, a, b);
  scale(c, 2.0f);
  const float sum = reduce_sum(c);
  // a,b,c were produced and consumed on the device: zero host->device
  // uploads in the whole chain.
  EXPECT_EQ(profile().bytes_to_device, 0u);
  const double n = 1 << 14;
  EXPECT_NEAR(sum, 2.0 * ((n - 1) * n / 2.0 + n), 200.0);
}

}  // namespace
