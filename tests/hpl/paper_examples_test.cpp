// The three example codes of paper §IV, written exactly in the paper's
// style, executed end to end: capture -> OpenCL C codegen -> clc compile
// -> clsim simulated device -> read-back through HPL's coherence layer.

#include <gtest/gtest.h>

#include <vector>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

// --- Paper Figure 3: SAXPY ----------------------------------------------------

void saxpy(Array<double, 1> y, Array<double, 1> x, Double a) {
  y[idx] = a * x[idx] + y[idx];
}

TEST(PaperExamples, Saxpy) {
  constexpr std::size_t n = 1000;
  double myvector[n];
  for (std::size_t i = 0; i < n; ++i) myvector[i] = 2.0 * double(i);

  Array<double, 1> x(n), y(n, myvector);
  for (std::size_t i = 0; i < n; ++i) x(i) = double(i);

  Double a;
  a = 3.0;

  eval(saxpy)(y, x, a);

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(y(i), 3.0 * double(i) + 2.0 * double(i)) << i;
  }
}

// --- Paper Figure 4: dot product ----------------------------------------------

constexpr int kN = 256;
constexpr int kM = 32;
constexpr int kGroups = kN / kM;

void dotp(Array<float, 1> v1, Array<float, 1> v2, Array<float, 1> pSums) {
  Int i;
  Array<float, 1, Local> sharedM(kM);

  sharedM[lidx] = v1[idx] * v2[idx];

  barrier(LOCAL);

  if_(lidx == 0) {
    for_(i = 0, i < kM, i++) {
      pSums[gidx] += sharedM[i];
    } endfor_
  } endif_
}

TEST(PaperExamples, DotProduct) {
  Array<float, 1> v1(kN), v2(kN), pSums(kGroups);
  float expected = 0.0f;
  for (int i = 0; i < kN; ++i) {
    v1(i) = float(i % 7) * 0.5f;
    v2(i) = float(i % 5) - 2.0f;
    expected += v1(i) * v2(i);
  }

  eval(dotp).global(kN).local(kM)(v1, v2, pSums);

  float result = 0.0f;
  for (int i = 0; i < kGroups; ++i) result += pSums(i);

  EXPECT_NEAR(result, expected, 1e-3f);
}

// --- Paper Figure 5(b): sparse matrix-vector product ---------------------------

constexpr int kRows = 64;
constexpr int kNZ = 256;  // 4 nonzeroes per row
constexpr int kLocalM = 8;
constexpr int kSpmvGlobal = kRows * kLocalM;

void spmv(Array<float, 1> A, Array<float, 1> vec, Array<int, 1> cols,
          Array<int, 1> rowptr, Array<float, 1> out) {
  Int j;
  Float mySum = 0;

  for_(j = rowptr[gidx] + lidx, j < rowptr[gidx + 1], j += kLocalM) {
    mySum += A[j] * vec[cols[j]];
  } endfor_

  Array<float, 1, Local> sdata(kLocalM);
  sdata[lidx] = mySum;
  barrier(LOCAL);

  // Reduce sdata (paper's unrolled binary reduction for M = 8).
  if_(lidx < 4) {
    sdata[lidx] += sdata[lidx + 4];
  } endif_
  barrier(LOCAL);
  if_(lidx < 2) {
    sdata[lidx] += sdata[lidx + 2];
  } endif_
  barrier(LOCAL);
  if_(lidx == 0) {
    out[gidx] = sdata[0] + sdata[1];
  } endif_
}

TEST(PaperExamples, SparseMatrixVector) {
  Array<float, 1> A(kNZ), vec(kRows), out(kRows);
  Array<int, 1> cols(kNZ), rowptr(kRows + 1);

  // Build a CSR matrix with 4 nonzeroes per row at deterministic columns.
  const int per_row = kNZ / kRows;
  for (int r = 0; r <= kRows; ++r) rowptr(r) = r * per_row;
  for (int r = 0; r < kRows; ++r) {
    for (int k = 0; k < per_row; ++k) {
      const int j = r * per_row + k;
      cols(j) = (r * 3 + k * 17) % kRows;
      A(j) = float(j % 11) * 0.25f + 1.0f;
    }
  }
  for (int r = 0; r < kRows; ++r) vec(r) = float(r % 13) - 6.0f;

  eval(spmv).global(kSpmvGlobal).local(kLocalM)(A, vec, cols, rowptr, out);

  for (int r = 0; r < kRows; ++r) {
    float expected = 0.0f;
    for (int j = r * per_row; j < (r + 1) * per_row; ++j) {
      expected += A.get(j) * float((cols(j) % 13) - 6);
    }
    ASSERT_NEAR(out(r), expected, 1e-3f) << "row " << r;
  }
}

}  // namespace
