// KernelBuilder unit tests: statement routing (body vs for_ headers),
// block-stack discipline, parameter access tracking, and capture-scope
// exclusivity — exercised directly, below the Array/eval layers.

#include <gtest/gtest.h>

#include "hpl/builder.hpp"
#include "hpl/codegen.hpp"

using namespace HPL;
using namespace HPL::detail;

namespace {

TEST(Builder, StatementsAccumulateInOrder) {
  KernelBuilder builder;
  builder.emit_statement("a = 1;");
  builder.emit_statement("b = 2;");
  EXPECT_EQ(builder.body(), "  a = 1;\n  b = 2;\n");
}

TEST(Builder, ForHeaderRouting) {
  KernelBuilder builder;
  builder.for_init_section();
  builder.emit_statement("i = 0;");     // routed into the init slot
  builder.for_cond_section(Expr("i < 10"));
  builder.emit_statement("i++;");       // routed into the update slot
  builder.for_body_section();
  builder.emit_statement("work();");
  builder.end_for();
  EXPECT_EQ(builder.body(),
            "  for (i = 0; i < 10; i++) {\n    work();\n  }\n");
}

TEST(Builder, ForHeaderWithMultipleInitParts) {
  KernelBuilder builder;
  builder.for_init_section();
  builder.emit_statement("i = 0;");
  builder.emit_statement("j = 9;");
  builder.for_cond_section(Expr("i < j"));
  builder.emit_statement("i++;");
  builder.emit_statement("j--;");
  builder.for_body_section();
  builder.end_for();
  EXPECT_EQ(builder.body(), "  for (i = 0, j = 9; i < j; i++, j--) {\n  }\n");
}

TEST(Builder, NestedBlocksIndent) {
  KernelBuilder builder;
  builder.begin_if(Expr("x"));
  builder.begin_while(Expr("y"));
  builder.emit_statement("z();");
  builder.end_while();
  builder.end_if();
  EXPECT_EQ(builder.body(),
            "  if (x) {\n    while (y) {\n      z();\n    }\n  }\n");
  builder.check_balanced();
}

TEST(Builder, ElseRequiresIf) {
  KernelBuilder builder;
  EXPECT_THROW(builder.begin_else(), hplrepro::Error);
  builder.begin_while(Expr("1"));
  EXPECT_THROW(builder.begin_else(), hplrepro::Error);
  EXPECT_THROW(builder.end_if(), hplrepro::Error);
  builder.end_while();
}

TEST(Builder, MismatchedEndsDiagnosed) {
  KernelBuilder builder;
  builder.begin_if(Expr("1"));
  EXPECT_THROW(builder.end_for(), hplrepro::Error);
  EXPECT_THROW(builder.end_while(), hplrepro::Error);
  builder.end_if();
  EXPECT_THROW(builder.end_if(), hplrepro::Error);
}

TEST(Builder, UnbalancedDetectedAtEnd) {
  KernelBuilder builder;
  builder.begin_if(Expr("1"));
  EXPECT_THROW(builder.check_balanced(), hplrepro::Error);
  builder.end_if();
  EXPECT_NO_THROW(builder.check_balanced());
}

TEST(Builder, NestedForHeaderRejected) {
  KernelBuilder builder;
  builder.for_init_section();
  EXPECT_THROW(builder.for_init_section(), hplrepro::Error);
}

TEST(Builder, ParamAccessTracking) {
  KernelBuilder builder;
  builder.add_param("float", 1, Global);
  builder.add_param("float", 1, Global);
  builder.add_param("float", 0, Global);
  builder.note_read(0);
  builder.note_write(1);
  builder.note_read(1);
  builder.note_read(99);  // out of range: ignored, not fatal

  const auto& params = builder.params();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].name, "p0");
  EXPECT_TRUE(params[0].access.read);
  EXPECT_FALSE(params[0].access.written);
  EXPECT_TRUE(params[1].access.written);
  EXPECT_TRUE(params[1].access.read);
  EXPECT_FALSE(params[2].access.read);
}

TEST(Builder, PredefinedDeduplicated) {
  KernelBuilder builder;
  EXPECT_EQ(builder.use_predefined("idx", "get_global_id(0)"), "idx");
  EXPECT_EQ(builder.use_predefined("idx", "get_global_id(0)"), "idx");
  EXPECT_EQ(builder.use_predefined("lidx", "get_local_id(0)"), "lidx");
  EXPECT_EQ(builder.predefined().size(), 2u);
}

TEST(Builder, CaptureScopeIsExclusive) {
  KernelBuilder outer;
  CaptureScope scope(outer);
  EXPECT_EQ(KernelBuilder::current(), &outer);
  KernelBuilder inner;
  EXPECT_THROW(CaptureScope nested(inner), hplrepro::Error);
}

TEST(Builder, NoCurrentBuilderOutsideScope) {
  EXPECT_EQ(KernelBuilder::current(), nullptr);
  {
    KernelBuilder builder;
    CaptureScope scope(builder);
    EXPECT_EQ(KernelBuilder::current(), &builder);
  }
  EXPECT_EQ(KernelBuilder::current(), nullptr);
}

TEST(Builder, DeclareHelpers) {
  KernelBuilder builder;
  const std::string s1 = builder.declare_scalar("int", nullptr);
  const Expr init(42);
  const std::string s2 = builder.declare_scalar("float", &init);
  const std::string a1 = builder.declare_array("float", {4, 4}, Local);
  EXPECT_EQ(s1, "v0");
  EXPECT_EQ(s2, "v1");
  EXPECT_EQ(a1, "v2");
  EXPECT_EQ(builder.body(),
            "  int v0;\n  float v1 = 42;\n  __local float v2[16];\n");
}

TEST(Builder, GeneratedSignatureConstness) {
  KernelBuilder builder;
  builder.add_param("float", 1, Global);
  builder.add_param("float", 1, Global);
  builder.note_read(0);
  builder.note_write(1);
  const std::string src =
      generate_kernel_source("k", builder.params(), builder.body());
  EXPECT_NE(src.find("__global const float* p0"), std::string::npos) << src;
  EXPECT_NE(src.find("__global float* p1"), std::string::npos) << src;
}

}  // namespace
