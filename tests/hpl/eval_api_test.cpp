// eval() API behaviour: default domains, default device, scalar-argument
// forms, and the user-error diagnostics HPL raises.

#include <gtest/gtest.h>

#include <thread>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

void fill_ids(Array<int, 1> out) { out[idx] = cast<std::int32_t>(idx); }

TEST(EvalApi, DefaultGlobalDomainIsFirstArgumentDims) {
  Array<int, 1> out(37);  // awkward size; no local divides it nicely but 1
  eval(fill_ids)(out);
  for (int i = 0; i < 37; ++i) EXPECT_EQ(out(i), i);
}

void fill_2d(Array<int, 2> out) {
  out[idx][idy] = cast<std::int32_t>(idx * 100 + idy);
}

TEST(EvalApi, DefaultGlobalDomainFor2D) {
  Array<int, 2> out(8, 6);
  eval(fill_2d)(out);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_EQ(out(i, j), i * 100 + j);
    }
  }
}

void scale(Array<float, 1> data, Float factor) {
  data[idx] = data[idx] * factor;
}

TEST(EvalApi, ScalarArgumentForms) {
  Array<float, 1> data(16);
  for (int i = 0; i < 16; ++i) data(i) = 1.0f;

  Float wrapped;
  wrapped = 2.0f;
  eval(scale)(data, wrapped);        // HPL scalar object
  eval(scale)(data, 3.0f);           // plain float
  eval(scale)(data, 2);              // plain int, converted
  EXPECT_EQ(data(0), 12.0f);
}

void needs_global(Array<float, 1> out, Float v) { out[idx] = v; }

TEST(EvalApi, ExplicitDomainsOverrideDefaults) {
  Array<float, 1> out(100);
  for (int i = 0; i < 100; ++i) out(i) = -1.0f;
  // Only evaluate the first 10 elements. Coherence is tracked at
  // whole-array granularity (as in HPL/OpenCL): elements the kernel did
  // not write are undefined after the launch, so only [0, 10) is checked.
  eval(needs_global).global(10).local(5)(out, 7.0f);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out(i), 7.0f) << i;
}

TEST(EvalApi, DefaultDeviceIsAccelerator) {
  EXPECT_FALSE(Device::default_device().is_cpu());
  EXPECT_EQ(Device::default_device().name().find("Tesla"), 3u);  // "SimTesla ..."
}

void double_kernel(Array<double, 1> out) { out[idx] = 1.0; }

TEST(EvalApi, DoubleKernelRejectedOnQuadro) {
  // Eager-mode contract: the build error surfaces from eval() itself.
  // (With fusion on, deferred evals surface it at the forcing point — see
  // fusion_test.cpp.)
  ScopedFusionDisable fusion_off;
  Array<double, 1> out(8);
  EXPECT_THROW(eval(double_kernel).device(*Device::by_name("Quadro"))(out),
               hplrepro::Error);
  // ... but runs on the Tesla and the CPU device.
  EXPECT_NO_THROW(eval(double_kernel).device(*Device::by_name("Tesla"))(out));
  EXPECT_NO_THROW(eval(double_kernel).device(Device::cpu_device())(out));
}

TEST(EvalApi, MismatchedLocalSizeThrows) {
  ScopedFusionDisable fusion_off;  // eager-mode contract: throws at eval()
  Array<float, 1> out(10);
  EXPECT_THROW(eval(needs_global).global(10).local(3)(out, 1.0f),
               hplrepro::Error);
}

// --- Host/kernel indexing discipline (paper §III-A) ---------------------------

TEST(EvalApi, BracketIndexingInHostCodeThrows) {
  Array<float, 1> data(4);
  EXPECT_THROW((void)(data[0] + data[1]), hplrepro::Error);
}

void bad_paren_kernel(Array<float, 1> data) {
  (void)data;
  // Using a second array's () inside a kernel is the error; simulate by
  // touching a captured host array via operator() during capture.
}

TEST(EvalApi, ControlKeywordsOutsideKernelThrow) {
  EXPECT_THROW(detail::begin_if_(Expr(1)), hplrepro::Error);
  EXPECT_THROW(barrier(LOCAL), hplrepro::Error);
}

void unbalanced_kernel(Array<float, 1> data) {
  if_(idx == 0) {
    data[idx] = 1.0f;
  }  // missing endif_
}

TEST(EvalApi, UnbalancedControlBlockDiagnosed) {
  Array<float, 1> data(4);
  purge_kernel_cache();
  try {
    eval(unbalanced_kernel)(data);
    FAIL() << "expected an error about a missing endif_";
  } catch (const hplrepro::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unclosed"), std::string::npos)
        << e.what();
  }
}

void writes_scalar_param(Array<float, 1> out, Float v) {
  v = 1.0f;  // scalar parameters are read-only (passed by value)
  out[idx] = v;
}

TEST(EvalApi, WritingScalarParameterDiagnosed) {
  Array<float, 1> out(4);
  purge_kernel_cache();
  EXPECT_THROW(eval(writes_scalar_param)(out, 2.0f), hplrepro::Error);
}

void writes_constant_param(Array<float, 1, Constant> table) {
  table[idx] = 0.0f;
}

TEST(EvalApi, WritingConstantMemoryDiagnosed) {
  Array<float, 1, Constant> table(4);
  purge_kernel_cache();
  EXPECT_THROW(eval(writes_constant_param)(table), hplrepro::Error);
}

TEST(EvalApi, PlatformHasThreeDevices) {
  EXPECT_EQ(Device::all().size(), 3u);
  EXPECT_TRUE(Device::cpu_device().is_cpu());
  EXPECT_FALSE(Device::by_name("Tesla")->supports_double() == false);
  EXPECT_FALSE(Device::by_name("Quadro")->supports_double());
}

void tag_value(Array<float, 1> out, Float v) { out[idx] = v; }

TEST(EvalApiRace, ConcurrentSameKernelEvalsKeepArgumentsPaired) {
  // Regression: two host threads eval()ing the SAME kernel share one
  // clsim::Kernel object per device. Without the per-built-kernel launch
  // mutex spanning bind + enqueue, thread B could overwrite thread A's
  // argument slots between A's set_arg and A's enqueue, launching A's
  // NDRange with B's buffer or scalar.
  ScopedFusionDisable fusion_off;  // exact launch counts below
  purge_kernel_cache();
  reset_profile();

  constexpr std::size_t kElems = 512;
  constexpr int kIters = 50;
  Array<float, 1> warm(kElems), a(kElems), b(kElems);
  eval(tag_value)(warm, 0.0f);  // build once so both threads race on binds

  std::thread t1([&] {
    for (int i = 0; i < kIters; ++i) eval(tag_value)(a, 1.0f);
  });
  std::thread t2([&] {
    for (int i = 0; i < kIters; ++i) eval(tag_value)(b, 2.0f);
  });
  t1.join();
  t2.join();

  for (std::size_t i = 0; i < kElems; ++i) {
    ASSERT_EQ(a.get(i), 1.0f) << "arg-slot mix-up at " << i;
    ASSERT_EQ(b.get(i), 2.0f) << "arg-slot mix-up at " << i;
  }
  const auto snap = profile();
  EXPECT_EQ(snap.kernel_launches, 2u * kIters + 1u);
  EXPECT_EQ(snap.kernel_cache_hits + snap.kernel_cache_misses,
            snap.kernel_launches);
}

void cold_shared(Array<float, 1> out) { out[idx] = 7.0f; }

TEST(EvalApiRace, ConcurrentColdFirstInvocationBuildsConsistently) {
  // Both threads hit an empty cache for the same kernel: capture happens
  // per thread (thread_local builders), but the kernel-source registry is
  // first-wins and build_for is serialised, so exactly one binary is
  // built per device and both launches complete correctly.
  ScopedFusionDisable fusion_off;  // exact launch counts below
  purge_kernel_cache();
  reset_profile();

  Array<float, 1> a(128), b(128);
  std::thread t1([&] { eval(cold_shared)(a); });
  std::thread t2([&] { eval(cold_shared)(b); });
  t1.join();
  t2.join();

  for (std::size_t i = 0; i < 128; ++i) {
    ASSERT_EQ(a.get(i), 7.0f);
    ASSERT_EQ(b.get(i), 7.0f);
  }
  const auto snap = profile();
  EXPECT_EQ(snap.kernel_launches, 2u);
  EXPECT_EQ(snap.kernel_cache_hits + snap.kernel_cache_misses, 2u);
  EXPECT_EQ(snap.kernels_built, 1u);
}

}  // namespace
