// Expr capture and Array host-side semantics: the code strings every
// operator produces, host () indexing for ranks 1-3, data(), wrapped
// storage, and scalar host arithmetic.

#include <gtest/gtest.h>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

// --- Expr operator coverage ------------------------------------------------------

TEST(Expr, ArithmeticCode) {
  const Expr a("a"), b("b");
  EXPECT_EQ((a + b).code(), "(a + b)");
  EXPECT_EQ((a - b).code(), "(a - b)");
  EXPECT_EQ((a * b).code(), "(a * b)");
  EXPECT_EQ((a / b).code(), "(a / b)");
  EXPECT_EQ((a % b).code(), "(a % b)");
  EXPECT_EQ((-a).code(), "(-a)");
  EXPECT_EQ((+a).code(), "a");
}

TEST(Expr, ComparisonAndLogicalCode) {
  const Expr a("a"), b("b");
  EXPECT_EQ((a < b).code(), "(a < b)");
  EXPECT_EQ((a <= b).code(), "(a <= b)");
  EXPECT_EQ((a > b).code(), "(a > b)");
  EXPECT_EQ((a >= b).code(), "(a >= b)");
  EXPECT_EQ((a == b).code(), "(a == b)");
  EXPECT_EQ((a != b).code(), "(a != b)");
  EXPECT_EQ((a && b).code(), "(a && b)");
  EXPECT_EQ((a || b).code(), "(a || b)");
  EXPECT_EQ((!a).code(), "(!a)");
}

TEST(Expr, BitwiseCode) {
  const Expr a("a"), b("b");
  EXPECT_EQ((a & b).code(), "(a & b)");
  EXPECT_EQ((a | b).code(), "(a | b)");
  EXPECT_EQ((a ^ b).code(), "(a ^ b)");
  EXPECT_EQ((a << b).code(), "(a << b)");
  EXPECT_EQ((a >> b).code(), "(a >> b)");
  EXPECT_EQ((~a).code(), "(~a)");
}

TEST(Expr, LiteralFormatting) {
  EXPECT_EQ(Expr(42).code(), "42");
  EXPECT_EQ(Expr(7u).code(), "7u");
  EXPECT_EQ(Expr(-3).code(), "-3");
  EXPECT_EQ(Expr(1.5).code(), "1.5");
  EXPECT_EQ(Expr(2.0f).code(), "2.0f");
  // Doubles that need full precision round-trip.
  const Expr pi(3.141592653589793);
  EXPECT_EQ(std::strtod(pi.code().c_str(), nullptr), 3.141592653589793);
}

TEST(Expr, CastAndMathComposition) {
  const Expr x("x");
  EXPECT_EQ(cast<std::int32_t>(x).code(), "((int)x)");
  EXPECT_EQ(cast<double>(x).code(), "((double)x)");
  EXPECT_EQ(sqrt(x).code(), "sqrt(x)");
  EXPECT_EQ(fmax(x, Expr(0)).code(), "fmax(x, 0)");
  EXPECT_EQ(clamp(x, Expr(0), Expr(1)).code(), "clamp(x, 0, 1)");
  EXPECT_EQ(mad(x, x, x).code(), "mad(x, x, x)");
}

TEST(Expr, PrecedenceIsSafeByParenthesisation) {
  const Expr a("a"), b("b"), c("c");
  // (a+b)*c: the naive string "a + b * c" would be wrong.
  EXPECT_EQ(((a + b) * c).code(), "((a + b) * c)");
}

// --- Array host semantics -----------------------------------------------------

TEST(ArrayHost, TwoAndThreeDimensionalIndexing) {
  Array<int, 2> m(3, 4);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      m(i, j) = i * 10 + j;
    }
  }
  EXPECT_EQ(m(2, 3), 23);
  EXPECT_EQ(m.size(0), 3u);
  EXPECT_EQ(m.size(1), 4u);
  EXPECT_EQ(m.length(), 12u);
  // Row-major: data()[i*4+j].
  EXPECT_EQ(m.data()[2 * 4 + 3], 23);

  Array<float, 3> t(2, 3, 4);
  t(1, 2, 3) = 9.0f;
  EXPECT_EQ(t.data()[(1 * 3 + 2) * 4 + 3], 9.0f);
  EXPECT_EQ(t.length(), 24u);
}

TEST(ArrayHost, ReferenceSemanticsOnCopy) {
  Array<int, 1> a(4);
  Array<int, 1> b = a;  // shares the impl, like the paper's arrays
  a(0) = 7;
  EXPECT_EQ(b(0), 7);
}

TEST(ArrayHost, ScalarHostArithmetic) {
  Int i;
  i = 5;
  i += 3;
  i -= 1;
  i *= 2;
  i /= 7;
  EXPECT_EQ(i.value(), 2);
  i++;
  ++i;
  i--;
  EXPECT_EQ(i.value(), 3);

  Double d(2.5);
  EXPECT_EQ(d.value(), 2.5);
  Double e = d;  // shares state
  d = 4.0;
  EXPECT_EQ(e.value(), 4.0);
}

TEST(ArrayHost, AllScalarAliasesExist) {
  Int a(1);
  Uint b(2u);
  Long c(3);
  Ulong d(4u);
  Float e(5.0f);
  Double f(6.0);
  Char g(7);
  Uchar h(8);
  Short i(9);
  Ushort j(10);
  EXPECT_EQ(a.value() + static_cast<int>(b.value()), 3);
  EXPECT_EQ(c.value() + static_cast<long>(d.value()), 7);
  EXPECT_EQ(e.value() + static_cast<float>(f.value()), 11.0f);
  EXPECT_EQ(g.value() + h.value(), 15);
  EXPECT_EQ(i.value() + j.value(), 19);
}

void double_it(Array<float, 1> v) { v[idx] = v[idx] * 2.0f; }

TEST(ArrayHost, DataPointerSeesKernelResults) {
  Array<float, 1> v(8);
  float* p = v.data();
  for (int i = 0; i < 8; ++i) p[i] = float(i);
  eval(double_it)(v);
  const float* q = v.data();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(q[i], 2.0f * i);
}

// --- Paper Figure 10(b): the naive transpose comparison with EPGPU -----------

void naive_transpose(Array<float, 2> dest, Array<float, 2> src) {
  dest[idx][idy] = src[idy][idx];
}

TEST(ArrayHost, PaperFigure10NaiveTranspose) {
  constexpr std::size_t h = 32, w = 16;
  Array<float, 2> src(h, w), dst(w, h);
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      src(r, c) = float(r * 100 + c);
    }
  }
  eval(naive_transpose).global(w, h)(dst, src);
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      ASSERT_EQ(dst(c, r), src(r, c));
    }
  }
}

}  // namespace
