// Kernel-cache observability (paper §V-B: repeat invocations skip capture,
// codegen and compilation). The ProfileSnapshot hit/miss counters make the
// cache's behaviour directly assertable.

#include <gtest/gtest.h>

#include "hpl/HPL.h"

using namespace HPL;

namespace {

void saxpy(Array<float, 1> y, Array<float, 1> x, Float a) {
  y[idx] = a * x[idx] + y[idx];
}

void scale(Array<float, 1> data, Float a) { data[idx] = a * data[idx]; }

class KernelCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    purge_kernel_cache();
    reset_profile();
  }

  // This suite asserts exact per-eval hit/miss/built counts, which only
  // the eager launch sequence produces (fused launches are covered by
  // fusion_test.cpp).
  ScopedFusionDisable fusion_off_;
};

TEST_F(KernelCacheTest, ColdEvalIsAMissWarmEvalIsAHit) {
  Array<float, 1> x(128), y(128);
  eval(saxpy)(y, x, 2.0f);
  auto snap = profile();
  EXPECT_EQ(snap.kernel_cache_misses, 1u);
  EXPECT_EQ(snap.kernel_cache_hits, 0u);
  EXPECT_EQ(snap.kernels_built, 1u);

  eval(saxpy)(y, x, 2.0f);
  eval(saxpy)(y, x, 2.0f);
  snap = profile();
  EXPECT_EQ(snap.kernel_cache_misses, 1u);
  EXPECT_EQ(snap.kernel_cache_hits, 2u);
  EXPECT_EQ(snap.kernels_built, 1u);
}

TEST_F(KernelCacheTest, HitsPlusMissesEqualsLaunches) {
  Array<float, 1> x(64), y(64);
  eval(saxpy)(y, x, 1.0f);
  eval(scale)(x, 3.0f);
  eval(saxpy)(y, x, 1.0f);
  eval(scale)(x, 3.0f);
  eval(scale)(x, 3.0f);
  const auto snap = profile();
  EXPECT_EQ(snap.kernel_launches, 5u);
  EXPECT_EQ(snap.kernel_cache_hits + snap.kernel_cache_misses,
            snap.kernel_launches);
  EXPECT_EQ(snap.kernel_cache_misses, 2u);  // one per distinct kernel
  EXPECT_EQ(snap.kernel_cache_hits, 3u);
}

TEST_F(KernelCacheTest, SecondDeviceIsAMissPerDevice) {
  const auto devices = Device::all();
  Array<float, 1> data(64);
  eval(scale).device(devices.front())(data, 2.0f);
  const auto mid = profile();
  EXPECT_EQ(mid.kernel_cache_misses, 1u);

  // A device the kernel was not built for yet: the cached source is
  // reused (no recapture) but the build is a cache miss.
  eval(scale).device(devices.back())(data, 2.0f);
  auto snap = profile();
  EXPECT_EQ(snap.kernel_cache_misses, 2u);
  EXPECT_EQ(snap.kernels_built, 2u);

  // Both devices warm now.
  eval(scale).device(devices.front())(data, 2.0f);
  eval(scale).device(devices.back())(data, 2.0f);
  snap = profile();
  EXPECT_EQ(snap.kernel_cache_hits, 2u);
  EXPECT_EQ(snap.kernels_built, 2u);
}

TEST_F(KernelCacheTest, PurgeForcesAMiss) {
  Array<float, 1> data(64);
  eval(scale)(data, 2.0f);
  eval(scale)(data, 2.0f);
  purge_kernel_cache();
  eval(scale)(data, 2.0f);
  const auto snap = profile();
  EXPECT_EQ(snap.kernel_cache_misses, 2u);
  EXPECT_EQ(snap.kernel_cache_hits, 1u);
  EXPECT_EQ(snap.kernels_built, 2u);
}

TEST_F(KernelCacheTest, ProfilerRegistryTracksLaunchesAndHits) {
  Array<float, 1> data(64);
  eval(scale)(data, 2.0f);
  eval(scale)(data, 2.0f);
  eval(scale)(data, 2.0f);

  const auto kernels = kernel_profiles();
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].launches, 3u);
  EXPECT_EQ(kernels[0].cache_hits, 2u);
  EXPECT_EQ(kernels[0].builds, 1u);
  EXPECT_GT(kernels[0].sim.total_s, 0.0);
}

TEST_F(KernelCacheTest, UnchangedBuildOptionsKeepTheCacheWarm) {
  // Regression: set_kernel_build_options used to purge the whole binary
  // cache even when the options string was identical to the current one,
  // turning every configuration-refresh call site into a rebuild storm.
  Array<float, 1> x(64), y(64);

  set_kernel_build_options("");
  eval(saxpy)(y, x, 1.0f);  // cold: miss
  set_kernel_build_options("");  // unchanged: must NOT purge
  eval(saxpy)(y, x, 1.0f);
  auto snap = profile();
  EXPECT_EQ(snap.kernel_cache_misses, 1u);
  EXPECT_EQ(snap.kernel_cache_hits, 1u);

  set_kernel_build_options("-cl-opt-disable");  // changed: purges
  eval(saxpy)(y, x, 1.0f);
  set_kernel_build_options("-cl-opt-disable");  // unchanged again
  eval(saxpy)(y, x, 1.0f);
  snap = profile();
  EXPECT_EQ(snap.kernel_cache_misses, 2u);
  EXPECT_EQ(snap.kernel_cache_hits, 2u);
  EXPECT_EQ(snap.kernels_built, 2u);

  set_kernel_build_options("");  // leave global state as found
}

}  // namespace
