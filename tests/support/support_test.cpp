// Support layer units: strings, table printing, PRNGs, thread pool, trace
// collector.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/prng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

using namespace hplrepro;

namespace {

// --- strings -------------------------------------------------------------------

TEST(Strings, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");

  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, DoubleLiteralRoundTrips) {
  for (const double v : {0.0, 1.0, -1.5, 3.141592653589793, 1e-300, 1e300,
                         0x1.0p-46, 1220703125.0}) {
    const std::string lit = double_literal(v);
    EXPECT_EQ(std::strtod(lit.c_str(), nullptr), v) << lit;
    // Must read as a floating literal for OpenCL C.
    EXPECT_NE(lit.find_first_of(".eE"), std::string::npos) << lit;
  }
}

TEST(Strings, FloatLiteralRoundTripsWithSuffix) {
  for (const float v : {0.0f, 2.5f, -1e20f, 3.14159f, 1.175494e-38f}) {
    const std::string lit = float_literal(v);
    ASSERT_EQ(lit.back(), 'f') << lit;
    const std::string body = lit.substr(0, lit.size() - 1);
    EXPECT_EQ(static_cast<float>(std::strtod(body.c_str(), nullptr)), v)
        << lit;
  }
}

// --- Table ----------------------------------------------------------------------

TEST(Table, AlignsAndValidatesArity) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

// --- PRNG -----------------------------------------------------------------------

TEST(Prng, SplitMixIsDeterministicAndSpread) {
  SplitMix64 a(7), b(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = a.next_u64();
    EXPECT_EQ(v, b.next_u64());
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in 1000 draws
  SplitMix64 c(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = c.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Prng, NasLcgMatchesSpecification) {
  // x_{k+1} = 5^13 * x_k mod 2^46 — check the first step by direct modular
  // arithmetic with 128-bit integers.
  NasLcg lcg(NasLcg::kDefaultSeed);
  lcg.randlc();
  using u128 = unsigned __int128;
  const u128 a = 1220703125;
  const u128 x0 = 271828183;
  const u128 mod = u128{1} << 46;
  const auto expected = static_cast<double>((a * x0) % mod);
  EXPECT_EQ(lcg.state(), expected);
}

TEST(Prng, SkipAheadMatchesSequentialStepping) {
  // Property: skip_ahead(seed, k) == k sequential randlc steps.
  for (const std::uint64_t k : {0ull, 1ull, 2ull, 17ull, 100ull, 12345ull}) {
    NasLcg sequential(NasLcg::kDefaultSeed);
    for (std::uint64_t i = 0; i < k; ++i) sequential.randlc();
    EXPECT_EQ(NasLcg::skip_ahead(NasLcg::kDefaultSeed, k),
              sequential.state())
        << "k=" << k;
  }
}

// --- ThreadPool ------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10007);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ChunkedCoversRangeExactly) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunked(1000, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    ASSERT_EQ(sum.load(), 4950);
  }
}

// --- trace collector -----------------------------------------------------------

class TraceCollector : public ::testing::Test {
protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
  }
};

TEST_F(TraceCollector, SpansAreNoopsWhenDisabled) {
  {
    trace::Span span("stage", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", std::uint64_t{1});
  }
  EXPECT_EQ(trace::event_count(), 0u);
}

TEST_F(TraceCollector, SpanRecordsNameCategoryAndArgs) {
  trace::set_enabled(true);
  {
    trace::Span span("stage", "test");
    EXPECT_TRUE(span.active());
    span.arg("count", std::uint64_t{7}).arg("label", "a \"quoted\" one");
  }
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "stage");
  EXPECT_EQ(events[0].cat, "test");
  EXPECT_FALSE(events[0].simulated);
  EXPECT_GE(events[0].dur_us, 0.0);
  ASSERT_EQ(events[0].args.kv.size(), 2u);
  EXPECT_EQ(events[0].args.kv[0].second, "7");
  EXPECT_EQ(events[0].args.kv[1].second, "\"a \\\"quoted\\\" one\"");
}

TEST_F(TraceCollector, RecordHonoursSimulatedClockTimestamps) {
  trace::set_enabled(true);
  trace::EventRecord ev;
  ev.name = "kernel";
  ev.cat = "sim";
  ev.track = "sim:TestDev";
  ev.simulated = true;
  ev.ts_us = 125.0;
  ev.dur_us = 50.0;
  trace::record(std::move(ev));

  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].simulated);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 125.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 50.0);
}

TEST_F(TraceCollector, ExporterEscapesAndSeparatesTracks) {
  trace::set_enabled(true);
  {
    trace::Span span("host \"stage\"\n", "test");
  }
  trace::EventRecord ev;
  ev.name = "dev cmd";
  ev.track = "sim:Dev";
  ev.simulated = true;
  ev.ts_us = 1;
  ev.dur_us = 2;
  trace::record(std::move(ev));

  const std::string path = "support_trace_out.json";
  std::remove(path.c_str());
  ASSERT_TRUE(trace::write_chrome_trace(path));
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  std::remove(path.c_str());

  EXPECT_NE(text.find("host \\\"stage\\\"\\n"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":1"), std::string::npos);  // host track
  EXPECT_NE(text.find("\"pid\":2"), std::string::npos);  // sim track
  EXPECT_NE(text.find("sim:Dev"), std::string::npos);
}

TEST_F(TraceCollector, ThreadedRecordingIsSafe) {
  trace::set_enabled(true);
  ThreadPool pool(4);
  pool.parallel_for(200, [&](std::size_t i) {
    trace::Span span("worker", "test");
    span.arg("i", static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(trace::event_count(), 200u);
}

}  // namespace
