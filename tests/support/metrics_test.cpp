// The hplrepro::metrics layer: histogram bucket math, quantile accuracy
// against a sorted-vector oracle, multi-threaded recording (exercised
// under the TSAN CI job), zero-sample guards, the critical-path interval
// partition, and the flight-recorder ring/dump-once machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/prng.hpp"

using namespace hplrepro;

namespace {

/// Registry names are process-global; each test records into its own.
metrics::Histogram& fresh_hist(const std::string& name) {
  metrics::Histogram& h = metrics::histogram(name);
  h.reset();
  return h;
}

const metrics::HistogramSnapshot& find_hist(const metrics::Snapshot& snap,
                                            const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return h;
  }
  ADD_FAILURE() << "histogram " << name << " not in snapshot";
  static metrics::HistogramSnapshot empty;
  return empty;
}

// --- Bucket math ---------------------------------------------------------------

TEST(MetricsHistogram, BucketIndexIsExactBelowSubCount) {
  for (std::uint64_t v = 0; v < metrics::Histogram::kSubCount; ++v) {
    EXPECT_EQ(metrics::Histogram::bucket_index(v), v);
    EXPECT_EQ(metrics::Histogram::bucket_lower(v), v);
    EXPECT_EQ(metrics::Histogram::bucket_width(v), 1u);
  }
}

TEST(MetricsHistogram, EveryValueFallsInsideItsBucket) {
  SplitMix64 prng(0xB0CE7);
  for (int i = 0; i < 20000; ++i) {
    // Random bit widths so every octave gets hit.
    const int bits = static_cast<int>(prng.next_below(50)) + 1;
    const std::uint64_t v = prng.next_u64() >> (64 - bits);
    const std::size_t idx = metrics::Histogram::bucket_index(v);
    ASSERT_LT(idx, metrics::Histogram::kBucketCount);
    const std::uint64_t lo = metrics::Histogram::bucket_lower(idx);
    const std::uint64_t w = metrics::Histogram::bucket_width(idx);
    const std::uint64_t clamped =
        std::min(v, (std::uint64_t{1} << metrics::Histogram::kMaxBits) - 1);
    EXPECT_LE(lo, clamped) << "v=" << v << " idx=" << idx;
    EXPECT_LT(clamped, lo + w) << "v=" << v << " idx=" << idx;
  }
}

TEST(MetricsHistogram, BucketIndexIsMonotoneAcrossBoundaries) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const std::size_t idx = metrics::Histogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
  EXPECT_EQ(metrics::Histogram::bucket_index(
                (std::uint64_t{1} << metrics::Histogram::kMaxBits) + 12345),
            metrics::Histogram::kBucketCount - 1);
}

TEST(MetricsHistogram, RelativeBucketWidthIsBounded) {
  // The quantile-error guarantee: width / lower <= 2^-kSubBits for every
  // bucket past the exact range.
  for (std::size_t idx = metrics::Histogram::kSubCount;
       idx < metrics::Histogram::kBucketCount; ++idx) {
    const double lo =
        static_cast<double>(metrics::Histogram::bucket_lower(idx));
    const double w =
        static_cast<double>(metrics::Histogram::bucket_width(idx));
    EXPECT_LE(w / lo, 1.0 / (1 << metrics::Histogram::kSubBits) + 1e-12);
  }
}

// --- Quantile accuracy vs sorted oracle ----------------------------------------

void check_quantiles_against_oracle(const std::string& name,
                                    std::vector<std::uint64_t> samples) {
  metrics::set_enabled(true);
  metrics::Histogram& h = fresh_hist(name);
  for (std::uint64_t s : samples) h.record(s);

  std::sort(samples.begin(), samples.end());
  const metrics::HistogramSnapshot snap =
      find_hist(metrics::snapshot(), name);
  ASSERT_EQ(snap.count, samples.size());

  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(std::ceil(
                                 q * static_cast<double>(samples.size()))) -
                             1;
    const std::uint64_t oracle = samples[std::min(rank, samples.size() - 1)];
    const double estimate = snap.quantile(q);
    // The estimate is the midpoint of the bucket holding the rank-q
    // sample, so it is within one bucket width of the oracle.
    const double tolerance = static_cast<double>(metrics::Histogram::
        bucket_width(metrics::Histogram::bucket_index(oracle)));
    EXPECT_NEAR(estimate, static_cast<double>(oracle), tolerance)
        << name << " q=" << q;
  }
  // Precomputed quantiles must be monotone.
  EXPECT_LE(snap.p50, snap.p90);
  EXPECT_LE(snap.p90, snap.p99);
  EXPECT_LE(snap.p99, snap.p999);
}

TEST(MetricsQuantiles, UniformSamplesMatchOracle) {
  SplitMix64 prng(1);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(prng.next_below(1000000));
  check_quantiles_against_oracle("test.quantile.uniform", std::move(samples));
}

TEST(MetricsQuantiles, HeavyTailSamplesMatchOracle) {
  SplitMix64 prng(2);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50000; ++i) {
    // Exponential-ish: random magnitude, random mantissa.
    const int bits = static_cast<int>(prng.next_below(40)) + 1;
    samples.push_back(prng.next_u64() >> (64 - bits));
  }
  check_quantiles_against_oracle("test.quantile.heavy", std::move(samples));
}

TEST(MetricsQuantiles, ConstantSamplesMatchOracle) {
  check_quantiles_against_oracle(
      "test.quantile.constant",
      std::vector<std::uint64_t>(1000, 123456));
}

TEST(MetricsQuantiles, SmallSampleCounts) {
  check_quantiles_against_oracle("test.quantile.small", {42});
  check_quantiles_against_oracle("test.quantile.two", {10, 1000000});
}

// --- Counters and gauges -------------------------------------------------------

TEST(MetricsCounters, StripedCountsSum) {
  metrics::set_enabled(true);
  metrics::Counter& c = metrics::counter("test.counter.sum");
  c.reset();
  for (int i = 0; i < 1000; ++i) c.add(2);
  EXPECT_EQ(c.value(), 2000u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsCounters, DisabledCounterDoesNotCount) {
  metrics::set_enabled(false);
  metrics::Counter& c = metrics::counter("test.counter.off");
  c.reset();
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
  metrics::set_enabled(true);
}

TEST(MetricsGauges, TracksValueAndHighWater) {
  metrics::Gauge& g = metrics::gauge("test.gauge");
  g.reset();
  g.add(3);
  g.add(4);
  g.add(-5);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 7);
  g.set(-10);
  EXPECT_EQ(g.value(), -10);
  EXPECT_EQ(g.max_value(), 7);
}

// --- Multi-threaded recording (exercised under the TSAN CI job) ----------------

TEST(MetricsThreaded, ConcurrentRecordingLosesNothing) {
  metrics::set_enabled(true);
  metrics::Histogram& h = fresh_hist("test.threaded.hist");
  metrics::Counter& c = metrics::counter("test.threaded.counter");
  c.reset();
  metrics::Gauge& g = metrics::gauge("test.threaded.gauge");
  g.reset();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 prng(static_cast<std::uint64_t>(t) + 99);
      for (int i = 0; i < kPerThread; ++i) {
        h.record(prng.next_below(1 << 20));
        c.add();
        g.add(1);
        g.add(-1);
      }
    });
  }
  for (auto& th : threads) th.join();

  const metrics::HistogramSnapshot snap =
      find_hist(metrics::snapshot(), "test.threaded.hist");
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(g.value(), 0);
  EXPECT_LE(g.max_value(), kThreads);
  // Bucket counts must account for every sample.
  std::uint64_t bucket_sum = 0;
  for (const auto& [lo, n] : snap.buckets) bucket_sum += n;
  EXPECT_EQ(bucket_sum, snap.count);
}

// --- Zero-sample guards --------------------------------------------------------

TEST(MetricsReport, EmptyMetricsProduceNoNanOrInf) {
  metrics::set_enabled(true);
  fresh_hist("test.report.empty");
  const metrics::Snapshot snap = metrics::snapshot();
  const metrics::HistogramSnapshot& h = find_hist(snap, "test.report.empty");
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.mean, 0.0);
  EXPECT_EQ(h.p50, 0.0);
  EXPECT_EQ(h.p999, 0.0);

  for (const std::string& text :
       {metrics::report(snap), metrics::to_json(snap)}) {
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
    EXPECT_FALSE(text.empty());
  }
}

// --- Critical-path attribution -------------------------------------------------

metrics::CriticalPathInput path_input() {
  metrics::CriticalPathInput in;
  in.kernel = "k";
  in.device = "d";
  return in;
}

double segment_sum(const metrics::CriticalPath& p) {
  return p.host_prep_us + p.queue_wait_us + p.transfer_us + p.kernel_us;
}

TEST(MetricsCriticalPath, SequentialWindowsPartitionExactly) {
  metrics::CriticalPathInput in = path_input();
  in.start_us = 0;
  in.enqueue_us = 10;
  in.kernel_start_us = 20;
  in.kernel_end_us = 50;
  in.done_us = 50;
  const metrics::CriticalPath p = metrics::attribute_critical_path(in);
  EXPECT_DOUBLE_EQ(p.total_us, 50);
  EXPECT_DOUBLE_EQ(p.host_prep_us, 10);
  EXPECT_DOUBLE_EQ(p.kernel_us, 30);
  EXPECT_DOUBLE_EQ(p.queue_wait_us, 10);
  EXPECT_DOUBLE_EQ(p.transfer_us, 0);
  EXPECT_DOUBLE_EQ(segment_sum(p), p.total_us);
}

TEST(MetricsCriticalPath, TransferOverlappingHostPrepWinsPriority) {
  metrics::CriticalPathInput in = path_input();
  in.start_us = 0;
  in.enqueue_us = 10;
  in.transfer_windows = {{2, 8}};
  in.kernel_start_us = 20;
  in.kernel_end_us = 50;
  in.done_us = 50;
  const metrics::CriticalPath p = metrics::attribute_critical_path(in);
  EXPECT_DOUBLE_EQ(p.transfer_us, 6);
  EXPECT_DOUBLE_EQ(p.host_prep_us, 4);  // [0,2) + [8,10)
  EXPECT_DOUBLE_EQ(p.kernel_us, 30);
  EXPECT_DOUBLE_EQ(p.queue_wait_us, 10);
  EXPECT_DOUBLE_EQ(segment_sum(p), p.total_us);
}

TEST(MetricsCriticalPath, KernelWindowWinsOverTransfer) {
  metrics::CriticalPathInput in = path_input();
  in.start_us = 0;
  in.enqueue_us = 5;
  in.transfer_windows = {{15, 25}};  // overlaps the kernel's first 5us
  in.kernel_start_us = 20;
  in.kernel_end_us = 50;
  in.done_us = 50;
  const metrics::CriticalPath p = metrics::attribute_critical_path(in);
  EXPECT_DOUBLE_EQ(p.kernel_us, 30);
  EXPECT_DOUBLE_EQ(p.transfer_us, 5);  // only [15,20)
  EXPECT_DOUBLE_EQ(segment_sum(p), p.total_us);
}

TEST(MetricsCriticalPath, SyncModeEnqueueAfterDoneIsClipped) {
  // In HPL_SYNC=1 the enqueue returns after the kernel ran; the host
  // window must clip to the completion instant and stay disjoint.
  metrics::CriticalPathInput in = path_input();
  in.start_us = 0;
  in.enqueue_us = 60;
  in.kernel_start_us = 10;
  in.kernel_end_us = 50;
  in.done_us = 50;
  const metrics::CriticalPath p = metrics::attribute_critical_path(in);
  EXPECT_DOUBLE_EQ(p.total_us, 50);
  EXPECT_DOUBLE_EQ(p.kernel_us, 40);
  EXPECT_DOUBLE_EQ(p.host_prep_us, 10);  // [0,10) not covered by the kernel
  EXPECT_DOUBLE_EQ(p.queue_wait_us, 0);
  EXPECT_DOUBLE_EQ(segment_sum(p), p.total_us);
}

TEST(MetricsCriticalPath, DegenerateWindowIsAllZero) {
  metrics::CriticalPathInput in = path_input();
  in.start_us = 100;
  in.done_us = 90;  // clock went nowhere (or inputs are garbage)
  const metrics::CriticalPath p = metrics::attribute_critical_path(in);
  EXPECT_DOUBLE_EQ(p.total_us, 0);
  EXPECT_DOUBLE_EQ(segment_sum(p), 0);
}

TEST(MetricsCriticalPath, RandomWindowsAlwaysSumToTotal) {
  SplitMix64 prng(0xCAFE);
  for (int i = 0; i < 2000; ++i) {
    metrics::CriticalPathInput in = path_input();
    in.start_us = prng.next_double() * 100;
    in.done_us = in.start_us + prng.next_double() * 1000;
    in.enqueue_us = prng.next_double() * 1200;
    in.kernel_start_us = prng.next_double() * 1200;
    in.kernel_end_us = in.kernel_start_us + prng.next_double() * 300;
    const int transfers = static_cast<int>(prng.next_below(4));
    for (int t = 0; t < transfers; ++t) {
      const double a = prng.next_double() * 1200;
      in.transfer_windows.emplace_back(a, a + prng.next_double() * 200);
    }
    const metrics::CriticalPath p = metrics::attribute_critical_path(in);
    EXPECT_GE(p.host_prep_us, 0);
    EXPECT_GE(p.queue_wait_us, 0);
    EXPECT_GE(p.transfer_us, -1e-9);
    EXPECT_GE(p.kernel_us, 0);
    EXPECT_NEAR(segment_sum(p), p.total_us, 1e-6);
  }
}

// --- Flight recorder -----------------------------------------------------------

TEST(FlightRecorder, DumpsOnceAndRetainsEntries) {
  metrics::flight_reset_for_test();
  EXPECT_EQ(metrics::flight_dump_count(), 0u);
  EXPECT_FALSE(metrics::flight_last_dump().dumped);

  metrics::flight_record("alpha", "test", true);
  metrics::flight_record("alpha", "test", false);
  metrics::flight_record("beta", "test", true);

  metrics::flight_dump_once("unit test");
  EXPECT_EQ(metrics::flight_dump_count(), 1u);
  const metrics::FlightDump dump = metrics::flight_last_dump();
  ASSERT_TRUE(dump.dumped);
  EXPECT_EQ(dump.reason, "unit test");
  ASSERT_GE(dump.entries.size(), 3u);

  // Entries are in timeline order (same-thread marks additionally keep
  // their per-thread sequence) and the latch holds: a second trigger
  // changes nothing.
  for (std::size_t i = 1; i < dump.entries.size(); ++i) {
    EXPECT_LE(dump.entries[i - 1].ts_us, dump.entries[i].ts_us);
    if (dump.entries[i - 1].thread == dump.entries[i].thread) {
      EXPECT_LT(dump.entries[i - 1].seq, dump.entries[i].seq);
    }
  }
  metrics::flight_record("gamma", "test", true);
  metrics::flight_dump_once("second trigger");
  EXPECT_EQ(metrics::flight_dump_count(), 1u);
  EXPECT_EQ(metrics::flight_last_dump().reason, "unit test");

  metrics::flight_reset_for_test();
  EXPECT_EQ(metrics::flight_dump_count(), 0u);
}

TEST(FlightRecorder, RingKeepsOnlyTheMostRecentEntries) {
  metrics::flight_reset_for_test();
  for (std::size_t i = 0; i < metrics::kFlightRingCapacity + 50; ++i) {
    metrics::flight_record("spin", "test", true);
  }
  metrics::flight_dump_once("overflow");
  const metrics::FlightDump dump = metrics::flight_last_dump();
  // Only this thread recorded since reset; its ring is capacity-bounded.
  EXPECT_LE(dump.entries.size(), metrics::kFlightRingCapacity);
  EXPECT_GT(dump.entries.size(), 0u);
  metrics::flight_reset_for_test();
}

TEST(FlightRecorder, ConcurrentRecordingIsSafe) {
  metrics::flight_reset_for_test();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 5000; ++i) {
        metrics::flight_record("worker", "test", (i & 1) == 0);
      }
    });
  }
  for (auto& th : threads) th.join();
  metrics::flight_dump_once("threads");
  EXPECT_EQ(metrics::flight_dump_count(), 1u);
  metrics::flight_reset_for_test();
}

}  // namespace
