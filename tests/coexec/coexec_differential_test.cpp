// Co-execution differential tests.
//
// Two layers:
//  * CoexecDispatcher — the chunk scheduler in isolation, driven by fake
//    launches with hand-picked simulated durations: partition shapes,
//    coverage, determinism, and the load-balancing direction of the
//    dynamic/guided policies.
//  * CoexecDifferential — full-stack: reduction, transpose and the stencil
//    family split across {2,3} simulated devices must be BIT-IDENTICAL to
//    the single-device run for every policy, and the profile counters must
//    reconcile exactly with the chunk plan the dispatcher reports.

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "benchsuite/reduction.hpp"
#include "benchsuite/stencil.hpp"
#include "benchsuite/transpose.hpp"
#include "coexec/coexec.hpp"
#include "hpl/HPL.h"
#include "support/error.hpp"

namespace bs = hplrepro::benchsuite;
namespace coexec = hplrepro::coexec;

namespace {

const coexec::Policy kPolicies[] = {
    coexec::Policy::Static, coexec::Policy::Dynamic, coexec::Policy::Guided};

/// Two fast+slow GPUs; three adds the host CPU.
std::vector<HPL::Device> device_set(int n) {
  std::vector<HPL::Device> ds;
  ds.push_back(*HPL::Device::by_name("Tesla"));
  ds.push_back(*HPL::Device::by_name("Quadro"));
  if (n >= 3) ds.push_back(HPL::Device::cpu_device());
  return ds;
}

/// Every group in [0, total) covered exactly once by contiguous chunks.
void expect_exact_coverage(const coexec::DispatchResult& result,
                           std::size_t total) {
  std::vector<coexec::Chunk> chunks = result.chunks;
  std::sort(chunks.begin(), chunks.end(),
            [](const coexec::Chunk& a, const coexec::Chunk& b) {
              return a.begin < b.begin;
            });
  std::size_t cursor = 0;
  for (const auto& chunk : chunks) {
    EXPECT_EQ(chunk.begin, cursor);
    EXPECT_GT(chunk.count, 0u);
    cursor += chunk.count;
  }
  EXPECT_EQ(cursor, total);
  EXPECT_EQ(result.total, total);
}

// ---------------------------------------------------------------------------
// Dispatcher units (fake launches, no HPL runtime)
// ---------------------------------------------------------------------------

TEST(CoexecDispatcher, StaticPartitionsContiguously) {
  std::vector<coexec::Chunk> seen;
  auto launch = [&](const coexec::Chunk& chunk) {
    seen.push_back(chunk);
    return [] { return 1.0; };
  };
  const auto result = coexec::dispatch(coexec::Policy::Static, 10, 3, launch);
  ASSERT_EQ(result.chunks.size(), 3u);
  EXPECT_EQ(result.chunks[0].slot, 0);
  EXPECT_EQ(result.chunks[0].begin, 0u);
  EXPECT_EQ(result.chunks[0].count, 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(result.chunks[1].begin, 4u);
  EXPECT_EQ(result.chunks[1].count, 3u);
  EXPECT_EQ(result.chunks[2].begin, 7u);
  EXPECT_EQ(result.chunks[2].count, 3u);
  expect_exact_coverage(result, 10);
  ASSERT_EQ(seen.size(), 3u);  // one launch per chunk
}

TEST(CoexecDispatcher, StaticSkipsIdleSlotsWhenWorkIsScarce) {
  const auto result = coexec::dispatch(
      coexec::Policy::Static, 2, 4,
      [](const coexec::Chunk&) { return [] { return 1.0; }; });
  EXPECT_EQ(result.chunks.size(), 2u);  // slots 2 and 3 get nothing
  expect_exact_coverage(result, 2);
}

TEST(CoexecDispatcher, RejectsDegenerateInputs) {
  auto noop = [](const coexec::Chunk&) { return [] { return 0.0; }; };
  EXPECT_THROW(coexec::dispatch(coexec::Policy::Static, 0, 2, noop),
               hplrepro::InvalidArgument);
  EXPECT_THROW(coexec::dispatch(coexec::Policy::Dynamic, 8, 0, noop),
               hplrepro::InvalidArgument);
}

TEST(CoexecDispatcher, DynamicBiasesTowardTheFastSlot) {
  // Slot 0 is 10x faster; with fixed-size chunks it must take the large
  // majority of the work, and the makespan must land far below the
  // slowest-does-half static bound.
  const double per_group[] = {1.0, 10.0};
  auto launch = [&](const coexec::Chunk& chunk) {
    const double dur =
        per_group[chunk.slot] * static_cast<double>(chunk.count);
    return [dur] { return dur; };
  };
  const auto result =
      coexec::dispatch(coexec::Policy::Dynamic, 128, 2, launch);
  expect_exact_coverage(result, 128);
  std::size_t fast_groups = 0;
  for (const auto& chunk : result.chunks) {
    if (chunk.slot == 0) fast_groups += chunk.count;
  }
  EXPECT_GT(fast_groups, 100u);
  EXPECT_LT(result.makespan(), 0.5 * 64.0 * 10.0);
}

TEST(CoexecDispatcher, GuidedChunksDecayAndCover) {
  auto launch = [](const coexec::Chunk& chunk) {
    const double dur = static_cast<double>(chunk.count);
    return [dur] { return dur; };
  };
  const auto result =
      coexec::dispatch(coexec::Policy::Guided, 256, 2, launch);
  expect_exact_coverage(result, 256);
  // First chunk is remaining/(2*slots) = 64; late chunks decay down to
  // the per-slot floor (total/(8*slots) = 16 under uniform weights) that
  // keeps the tail from being eaten by per-launch overhead.
  EXPECT_EQ(result.chunks.front().count, 64u);
  EXPECT_LE(result.chunks.back().count, 16u);
  EXPECT_LT(result.chunks.back().count, result.chunks.front().count);
  EXPECT_GT(result.chunks.size(), 4u);
}

TEST(CoexecDispatcher, GuidedWeightsScaleChunksByComputingPower) {
  // Slot 0 carries 99x the computing power: chunk sizes follow the
  // weights, so the slow slot is never primed with a huge chunk.
  const double per_group[] = {1.0, 99.0};
  auto launch = [&](const coexec::Chunk& chunk) {
    const double dur =
        per_group[chunk.slot] * static_cast<double>(chunk.count);
    return [dur] { return dur; };
  };
  const auto result = coexec::dispatch(coexec::Policy::Guided, 512, 2,
                                       launch, {99.0, 1.0});
  expect_exact_coverage(result, 512);
  std::size_t first_slow = 0;
  std::size_t slow_groups = 0;
  for (const auto& chunk : result.chunks) {
    if (chunk.slot != 1) continue;
    if (first_slow == 0) first_slow = chunk.count;
    slow_groups += chunk.count;
  }
  // Slow slot's opening chunk is its weighted share (a couple of
  // groups), nowhere near the ~65 an unweighted guided prime would
  // hand it.
  EXPECT_GT(slow_groups, 0u);
  EXPECT_LE(first_slow, 8u);
  // Ideal makespan is 512/(1 + 1/99) = 506.9; unweighted priming would
  // park >= 64 groups on the slow slot for a makespan >= 6336.
  EXPECT_LT(result.makespan(), 1000.0);
}

TEST(CoexecDispatcher, RejectsMalformedWeights) {
  auto noop = [](const coexec::Chunk&) { return [] { return 1.0; }; };
  EXPECT_THROW(
      coexec::dispatch(coexec::Policy::Guided, 8, 2, noop, {1.0}),
      hplrepro::InvalidArgument);
  EXPECT_THROW(
      coexec::dispatch(coexec::Policy::Guided, 8, 2, noop, {1.0, 0.0}),
      hplrepro::InvalidArgument);
}

TEST(CoexecDispatcher, PlanIsDeterministic) {
  auto launch = [](const coexec::Chunk& chunk) {
    const double dur = (chunk.slot == 0 ? 2.0 : 3.0) *
                       static_cast<double>(chunk.count);
    return [dur] { return dur; };
  };
  const auto a = coexec::dispatch(coexec::Policy::Guided, 100, 3, launch);
  const auto b = coexec::dispatch(coexec::Policy::Guided, 100, 3, launch);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t i = 0; i < a.chunks.size(); ++i) {
    EXPECT_EQ(a.chunks[i].slot, b.chunks[i].slot);
    EXPECT_EQ(a.chunks[i].begin, b.chunks[i].begin);
    EXPECT_EQ(a.chunks[i].count, b.chunks[i].count);
  }
}

TEST(CoexecDispatcher, LastDispatchReturnsThePlan) {
  const auto result = coexec::dispatch(
      coexec::Policy::Dynamic, 32, 2,
      [](const coexec::Chunk&) { return [] { return 1.0; }; });
  const auto last = coexec::last_dispatch();
  EXPECT_EQ(last.policy, coexec::Policy::Dynamic);
  EXPECT_EQ(last.total, 32u);
  EXPECT_EQ(last.chunks.size(), result.chunks.size());
  EXPECT_EQ(last.makespan(), result.makespan());
}

// ---------------------------------------------------------------------------
// Full-stack differentials: split == single device, bit for bit
// ---------------------------------------------------------------------------

class CoexecDifferential : public ::testing::Test {
protected:
  void SetUp() override { HPL::reset_profile(); }
};

TEST_F(CoexecDifferential, ReductionMatchesSingleDeviceBitExact) {
  bs::ReductionConfig config;
  config.elements = 1 << 16;
  config.groups = 64;
  config.local_size = 128;
  const double want =
      bs::reduction_hpl(config, *HPL::Device::by_name("Tesla")).sum;
  for (const int n : {2, 3}) {
    for (const auto policy : kPolicies) {
      bs::ReductionConfig split = config;
      split.coexec_devices = device_set(n);
      split.coexec_policy = policy;
      const double got =
          bs::reduction_hpl(split, HPL::Device::default_device()).sum;
      EXPECT_EQ(want, got) << n << " devices, policy "
                           << coexec::policy_name(policy);
    }
  }
}

TEST_F(CoexecDifferential, TransposeMatchesSingleDeviceBitExact) {
  bs::TransposeConfig config;
  config.rows = 128;
  config.cols = 128;
  const std::vector<float> want =
      bs::transpose_hpl(config, *HPL::Device::by_name("Tesla")).output;
  for (const int n : {2, 3}) {
    for (const auto policy : kPolicies) {
      bs::TransposeConfig split = config;
      split.coexec_devices = device_set(n);
      split.coexec_policy = policy;
      const auto got =
          bs::transpose_hpl(split, HPL::Device::default_device()).output;
      EXPECT_TRUE(want == got) << n << " devices, policy "
                               << coexec::policy_name(policy);
    }
  }
}

TEST_F(CoexecDifferential, StencilFamilyMatchesSingleDeviceBitExact) {
  bs::StencilConfig config;
  config.width = 64;
  config.height = 64;
  config.iterations = 3;
  const HPL::Device tesla = *HPL::Device::by_name("Tesla");
  const std::vector<float> want_blur = bs::blur_hpl(config, tesla).output;
  const std::vector<float> want_sobel = bs::sobel_hpl(config, tesla).output;
  const std::vector<float> want_jacobi = bs::jacobi_hpl(config, tesla).output;
  for (const int n : {2, 3}) {
    for (const auto policy : kPolicies) {
      bs::StencilConfig split = config;
      split.coexec_devices = device_set(n);
      split.coexec_policy = policy;
      const HPL::Device unused = HPL::Device::default_device();
      EXPECT_TRUE(want_blur == bs::blur_hpl(split, unused).output)
          << "blur, " << n << " devices, "
          << coexec::policy_name(policy);
      EXPECT_TRUE(want_sobel == bs::sobel_hpl(split, unused).output)
          << "sobel, " << n << " devices, "
          << coexec::policy_name(policy);
      EXPECT_TRUE(want_jacobi == bs::jacobi_hpl(split, unused).output)
          << "jacobi, " << n << " devices, "
          << coexec::policy_name(policy);
    }
  }
}

TEST_F(CoexecDifferential, WrapEdgesFallBackToWholeArrayReadsCorrectly) {
  // Wrap reaches the opposite image border, outside any row halo: the
  // benchsuite disables read narrowing there, and the result must still
  // match the single-device run exactly.
  bs::StencilConfig config;
  config.width = 40;
  config.height = 40;
  config.edge = bs::EdgePolicy::Wrap;
  config.iterations = 2;
  const std::vector<float> want =
      bs::jacobi_hpl(config, *HPL::Device::by_name("Tesla")).output;
  bs::StencilConfig split = config;
  split.coexec_devices = device_set(2);
  split.coexec_policy = coexec::Policy::Dynamic;
  EXPECT_TRUE(want ==
              bs::jacobi_hpl(split, HPL::Device::default_device()).output);
}

TEST_F(CoexecDifferential, LaunchAndCacheCountersMatchTheChunkPlan) {
  bs::TransposeConfig config;
  config.rows = 128;
  config.cols = 128;
  config.coexec_devices = device_set(2);
  config.coexec_policy = coexec::Policy::Dynamic;

  HPL::purge_kernel_cache();
  HPL::reset_profile();
  bs::transpose_hpl(config, HPL::Device::default_device());

  const auto plan = coexec::last_dispatch();
  const auto prof = HPL::profile();
  expect_exact_coverage(plan, 128 / bs::TransposeConfig::kTile);

  // Every chunk is a full mini-eval: one launch, one cache-hit/miss tick.
  EXPECT_EQ(prof.kernel_launches, plan.chunks.size());
  EXPECT_EQ(prof.kernel_cache_hits + prof.kernel_cache_misses,
            prof.kernel_launches);
  // Cold cache: exactly one build (miss) per device the plan touched.
  std::set<int> slots;
  for (const auto& chunk : plan.chunks) slots.insert(chunk.slot);
  EXPECT_EQ(prof.kernel_cache_misses, slots.size());
}

TEST_F(CoexecDifferential, JacobiHaloMergeStaysOffTheHost) {
  // Ping-pong iterations leave each device holding a disjoint band; the
  // next sweep's halo rows must arrive by direct device-to-device copy,
  // not through a host round-trip.
  bs::StencilConfig config;
  config.width = 64;
  config.height = 64;
  config.iterations = 4;
  config.coexec_devices = device_set(2);
  config.coexec_policy = coexec::Policy::Static;

  HPL::reset_profile();
  bs::jacobi_hpl(config, HPL::Device::default_device());
  const auto prof = HPL::profile();
  EXPECT_GT(prof.bytes_device_to_device, 0u);
  // d2h happens once, at the final result read-back — not per merge.
  EXPECT_LE(prof.bytes_to_host,
            static_cast<std::uint64_t>(config.pixels() * sizeof(float)));
}

TEST_F(CoexecDifferential, SingleEntryDeviceListDegeneratesToPlainEval) {
  bs::ReductionConfig config;
  config.elements = 1 << 12;
  config.groups = 16;
  config.local_size = 64;
  const double want =
      bs::reduction_hpl(config, *HPL::Device::by_name("Tesla")).sum;
  bs::ReductionConfig single = config;
  single.coexec_devices = {*HPL::Device::by_name("Tesla")};
  HPL::reset_profile();
  const double got =
      bs::reduction_hpl(single, HPL::Device::default_device()).sum;
  EXPECT_EQ(want, got);
  EXPECT_EQ(HPL::profile().kernel_launches, 1u);  // no split happened
}

}  // namespace
