// The paper's quantitative claims as regression-pinned invariants, at
// test-sized workloads:
//   1. HPL-generated kernels cost exactly what hand-written OpenCL costs
//      on the device (the basis of Figs. 7-9's "typically below 4%").
//   2. The Tesla/Xeon modeled ratio is large for compute-bound EP and
//      smallest for gather-bound spmv (Fig. 7's shape).
//   3. Kernel reuse makes repeat invocations cheap (paper §V-B).

#include <gtest/gtest.h>

#include "benchsuite/ep.hpp"
#include "hpl/HPL.h"
#include "benchsuite/floyd.hpp"
#include "benchsuite/reduction.hpp"
#include "benchsuite/spmv.hpp"
#include "benchsuite/transpose.hpp"

namespace bs = hplrepro::benchsuite;
namespace clsim = hplrepro::clsim;

namespace {

clsim::Device tesla() {
  return *clsim::Platform::get().device_by_name("Tesla");
}
clsim::Device xeon() {
  return *clsim::Platform::get().device_by_name("Xeon");
}
HPL::Device hpl_tesla() { return *HPL::Device::by_name("Tesla"); }

// The generated kernel's simulated device time must match the hand-written
// kernel's within a tight tolerance: HPL's cost lives on the host.
void expect_kernel_parity(double ocl, double hpl, const char* name) {
  EXPECT_NEAR(hpl / ocl, 1.0, 0.05) << name << ": ocl=" << ocl
                                    << " hpl=" << hpl;
}

TEST(PaperClaims, GeneratedKernelsRunAtHandwrittenSpeed) {
  {
    bs::EpConfig c;
    c.pairs = 1 << 12;
    c.chunk = 32;
    c.local_size = 32;
    expect_kernel_parity(
        bs::ep_opencl(c, tesla()).timings.kernel_sim_seconds,
        bs::ep_hpl(c, hpl_tesla()).timings.kernel_sim_seconds, "ep");
  }
  {
    bs::FloydConfig c;
    c.nodes = 64;
    expect_kernel_parity(
        bs::floyd_opencl(c, tesla()).timings.kernel_sim_seconds,
        bs::floyd_hpl(c, hpl_tesla()).timings.kernel_sim_seconds, "floyd");
  }
  {
    bs::TransposeConfig c;
    c.rows = c.cols = 256;
    expect_kernel_parity(
        bs::transpose_opencl(c, tesla()).timings.kernel_sim_seconds,
        bs::transpose_hpl(c, hpl_tesla()).timings.kernel_sim_seconds,
        "transpose");
  }
  {
    bs::SpmvConfig c;
    c.rows = 512;
    c.density = 0.02;
    expect_kernel_parity(
        bs::spmv_opencl(c, tesla()).timings.kernel_sim_seconds,
        bs::spmv_hpl(c, hpl_tesla()).timings.kernel_sim_seconds, "spmv");
  }
  {
    bs::ReductionConfig c;
    c.elements = 1 << 16;
    c.groups = 16;
    c.local_size = 64;
    expect_kernel_parity(
        bs::reduction_opencl(c, tesla()).timings.kernel_sim_seconds,
        bs::reduction_hpl(c, hpl_tesla()).timings.kernel_sim_seconds,
        "reduction");
  }
}

TEST(PaperClaims, SpeedupShapeEpHighSpmvLow) {
  // Modeled kernel-time ratios (Xeon / Tesla), small sizes. EP must be the
  // extreme outlier and spmv must sit well below it (Fig. 7's shape).
  // Sizes chosen so the Tesla is reasonably utilised (1024+ items) while
  // the test stays fast; at these scales EP's modeled ratio is ~75 and
  // keeps growing toward the paper's 257x with size (see Fig. 6).
  bs::EpConfig ep;
  ep.pairs = 1 << 16;
  const double ep_ratio =
      bs::ep_opencl(ep, xeon()).timings.kernel_sim_seconds /
      bs::ep_opencl(ep, tesla()).timings.kernel_sim_seconds;

  bs::SpmvConfig sp;
  sp.rows = 2048;
  const double spmv_ratio =
      bs::spmv_opencl(sp, xeon()).timings.kernel_sim_seconds /
      bs::spmv_opencl(sp, tesla()).timings.kernel_sim_seconds;

  bs::TransposeConfig tr;
  tr.rows = tr.cols = 256;
  const double tr_ratio =
      bs::transpose_opencl(tr, xeon()).timings.kernel_sim_seconds /
      bs::transpose_opencl(tr, tesla()).timings.kernel_sim_seconds;

  EXPECT_GT(ep_ratio, 60.0);            // paper: 257x at full size
  EXPECT_GT(ep_ratio, 3 * tr_ratio);    // EP dominates everything
  EXPECT_GT(ep_ratio, 1.5 * spmv_ratio);
  EXPECT_LT(spmv_ratio, 40.0);          // spmv is the weak case
  EXPECT_GT(spmv_ratio, 1.0);           // but the GPU still wins
}

TEST(PaperClaims, RepeatInvocationsAreCheap) {
  bs::TransposeConfig c;
  c.rows = c.cols = 128;
  // The cheapness grade compares host wall-clock, which a loaded machine
  // can invert (the warm run loses its scheduling slice); retried like
  // the overlap test in async_pipeline_test.cpp.
  bool warm_was_cheaper = false;
  for (int attempt = 0; attempt < 8 && !warm_was_cheaper; ++attempt) {
    HPL::purge_kernel_cache();
    const auto cold = bs::transpose_hpl(c, hpl_tesla()).timings;
    const auto warm = bs::transpose_hpl(c, hpl_tesla()).timings;
    // Same device work, every attempt...
    ASSERT_EQ(cold.kernel_sim_seconds, warm.kernel_sim_seconds);
    // ...but the warm run skips capture/codegen/compilation entirely.
    warm_was_cheaper = warm.host_seconds < cold.host_seconds;
  }
  EXPECT_TRUE(warm_was_cheaper);
}

void kernel_3d(HPL::Array<int, 3> out) {
  using namespace HPL;
  out[idx][idy][idz] =
      cast<std::int32_t>(idx * 10000 + idy * 100 + idz + gidz * 0 +
                         ngroupsy * 0 + lszz * 0 + lidz * 0 + szz * 0);
}

TEST(PaperClaims, ThreeDimensionalDomains) {
  // §II: domains of up to three dimensions; all nine predefined variables
  // per dimension group exist.
  HPL::Array<int, 3> out(4, 6, 8);
  HPL::eval(kernel_3d).global(4, 6, 8).local(2, 3, 4)(out);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 6; ++j) {
      for (int k = 0; k < 8; ++k) {
        ASSERT_EQ(out(i, j, k), i * 10000 + j * 100 + k);
      }
    }
  }
}

}  // namespace
