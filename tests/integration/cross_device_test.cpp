// Portability property (paper §V-C): every benchmark produces identical
// results on every simulated device, parameterised over the device list —
// the VM is the same, only the timing model differs, which is exactly the
// paper's "same code, any OpenCL device" claim in simulation form.

#include <gtest/gtest.h>

#include <cmath>

#include "benchsuite/ep.hpp"
#include "benchsuite/floyd.hpp"
#include "benchsuite/reduction.hpp"
#include "benchsuite/spmv.hpp"
#include "benchsuite/transpose.hpp"

namespace bs = hplrepro::benchsuite;
namespace clsim = hplrepro::clsim;

namespace {

struct DevicePair {
  std::string name;
};

class CrossDevice : public ::testing::TestWithParam<std::string> {
protected:
  clsim::Device ocl_device() {
    return *clsim::Platform::get().device_by_name(GetParam());
  }
  HPL::Device hpl_device() { return *HPL::Device::by_name(GetParam()); }
};

TEST_P(CrossDevice, FloydIdenticalEverywhere) {
  bs::FloydConfig config;
  config.nodes = 48;
  config.tile = 16;
  const auto serial = bs::floyd_serial(config);
  const auto ocl = bs::floyd_opencl(config, ocl_device());
  const auto hpl = bs::floyd_hpl(config, hpl_device());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FLOAT_EQ(serial[i], ocl.distances[i]) << i;
    ASSERT_FLOAT_EQ(serial[i], hpl.distances[i]) << i;
  }
}

TEST_P(CrossDevice, SpmvIdenticalEverywhere) {
  bs::SpmvConfig config;
  config.rows = 128;
  config.density = 0.05;
  const auto serial = bs::spmv_serial(config);
  const auto ocl = bs::spmv_opencl(config, ocl_device());
  const auto hpl = bs::spmv_hpl(config, hpl_device());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const float tol = 1e-4f + 1e-4f * std::fabs(serial[i]);
    ASSERT_NEAR(serial[i], ocl.output[i], tol) << i;
    ASSERT_NEAR(serial[i], hpl.output[i], tol) << i;
  }
}

TEST_P(CrossDevice, TransposeIdenticalEverywhere) {
  bs::TransposeConfig config;
  config.rows = 64;
  config.cols = 32;
  const auto serial = bs::transpose_serial(config);
  const auto ocl = bs::transpose_opencl(config, ocl_device());
  const auto hpl = bs::transpose_hpl(config, hpl_device());
  EXPECT_EQ(serial, ocl.output);
  EXPECT_EQ(serial, hpl.output);
}

TEST_P(CrossDevice, ReductionIdenticalEverywhere) {
  bs::ReductionConfig config;
  config.elements = 1 << 14;
  config.groups = 8;
  config.local_size = 64;
  const double serial = bs::reduction_serial(config);
  const auto ocl = bs::reduction_opencl(config, ocl_device());
  const auto hpl = bs::reduction_hpl(config, hpl_device());
  EXPECT_NEAR(serial, ocl.sum, 0.05);
  EXPECT_NEAR(serial, hpl.sum, 0.05);
  // The two device versions perform the identical float-op sequence, so
  // they must agree bit for bit with each other.
  EXPECT_EQ(ocl.sum, hpl.sum);
}

INSTANTIATE_TEST_SUITE_P(AllDevices, CrossDevice,
                         ::testing::Values("Tesla", "Quadro", "Xeon"));

// --- Simulated-performance sanity ------------------------------------------------

TEST(CrossDevicePerf, DeviceOrderingHolds) {
  // Modeled kernel time must order Tesla < Quadro < Xeon for a parallel
  // compute-heavy workload — the premise of the paper's Figs. 7 and 9.
  bs::FloydConfig config;
  config.nodes = 64;
  const double tesla =
      bs::floyd_opencl(config, *clsim::Platform::get().device_by_name("Tesla"))
          .timings.kernel_sim_seconds;
  const double quadro =
      bs::floyd_opencl(config,
                       *clsim::Platform::get().device_by_name("Quadro"))
          .timings.kernel_sim_seconds;
  const double xeon =
      bs::floyd_opencl(config, *clsim::Platform::get().device_by_name("Xeon"))
          .timings.kernel_sim_seconds;
  EXPECT_LT(tesla, quadro);
  EXPECT_LT(quadro, xeon);
}

TEST(CrossDevicePerf, EpClassesScaleGeometrically) {
  // ep_class sizes grow W < A < B < C (paper Fig. 6's sweep).
  const auto w = bs::ep_class('W'), a = bs::ep_class('A'),
             b = bs::ep_class('B'), c = bs::ep_class('C');
  EXPECT_LT(w.pairs, a.pairs);
  EXPECT_LT(a.pairs, b.pairs);
  EXPECT_LT(b.pairs, c.pairs);
  EXPECT_THROW(bs::ep_class('Z'), hplrepro::InvalidArgument);
}

}  // namespace
