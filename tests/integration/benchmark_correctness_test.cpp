// Cross-validation of the five paper benchmarks: for each one, the HPL
// version and the OpenCL-style version must both reproduce the serial C++
// oracle (exactly for integer results, within FP-reassociation tolerance
// for float reductions).

#include <gtest/gtest.h>

#include <cmath>

#include "benchsuite/ep.hpp"
#include "benchsuite/floyd.hpp"
#include "benchsuite/reduction.hpp"
#include "benchsuite/spmv.hpp"
#include "benchsuite/transpose.hpp"

namespace bs = hplrepro::benchsuite;
namespace clsim = hplrepro::clsim;

namespace {

clsim::Device tesla() {
  return *clsim::Platform::get().device_by_name("Tesla");
}
HPL::Device hpl_tesla() { return *HPL::Device::by_name("Tesla"); }

TEST(BenchmarkCorrectness, EpMatchesSerial) {
  bs::EpConfig config;
  config.pairs = 1 << 12;
  config.chunk = 32;
  config.local_size = 32;

  const bs::EpResult serial = bs::ep_serial(config);
  const bs::EpRun opencl = bs::ep_opencl(config, tesla());
  const bs::EpRun hpl = bs::ep_hpl(config, hpl_tesla());

  EXPECT_EQ(serial.accepted, opencl.result.accepted);
  EXPECT_EQ(serial.accepted, hpl.result.accepted);
  for (std::size_t l = 0; l < 10; ++l) {
    EXPECT_EQ(serial.q[l], opencl.result.q[l]) << "annulus " << l;
    EXPECT_EQ(serial.q[l], hpl.result.q[l]) << "annulus " << l;
  }
  EXPECT_NEAR(serial.sx, opencl.result.sx, 1e-9 * std::fabs(serial.sx) + 1e-9);
  EXPECT_NEAR(serial.sx, hpl.result.sx, 1e-9 * std::fabs(serial.sx) + 1e-9);
  EXPECT_NEAR(serial.sy, opencl.result.sy, 1e-9 * std::fabs(serial.sy) + 1e-9);
  EXPECT_NEAR(serial.sy, hpl.result.sy, 1e-9 * std::fabs(serial.sy) + 1e-9);
}

TEST(BenchmarkCorrectness, FloydMatchesSerial) {
  bs::FloydConfig config;
  config.nodes = 64;

  const std::vector<float> serial = bs::floyd_serial(config);
  const bs::FloydRun opencl = bs::floyd_opencl(config, tesla());
  const bs::FloydRun hpl = bs::floyd_hpl(config, hpl_tesla());

  ASSERT_EQ(serial.size(), opencl.distances.size());
  ASSERT_EQ(serial.size(), hpl.distances.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FLOAT_EQ(serial[i], opencl.distances[i]) << "index " << i;
    ASSERT_FLOAT_EQ(serial[i], hpl.distances[i]) << "index " << i;
  }
}

TEST(BenchmarkCorrectness, TransposeMatchesSerial) {
  bs::TransposeConfig config;
  config.rows = 128;
  config.cols = 64;

  const std::vector<float> serial = bs::transpose_serial(config);
  const bs::TransposeRun opencl = bs::transpose_opencl(config, tesla());
  const bs::TransposeRun hpl = bs::transpose_hpl(config, hpl_tesla());

  ASSERT_EQ(serial.size(), opencl.output.size());
  ASSERT_EQ(serial.size(), hpl.output.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FLOAT_EQ(serial[i], opencl.output[i]) << "index " << i;
    ASSERT_FLOAT_EQ(serial[i], hpl.output[i]) << "index " << i;
  }
}

TEST(BenchmarkCorrectness, SpmvMatchesSerial) {
  bs::SpmvConfig config;
  config.rows = 256;
  config.density = 0.05;

  const std::vector<float> serial = bs::spmv_serial(config);
  const bs::SpmvRun opencl = bs::spmv_opencl(config, tesla());
  const bs::SpmvRun hpl = bs::spmv_hpl(config, hpl_tesla());

  ASSERT_EQ(serial.size(), opencl.output.size());
  ASSERT_EQ(serial.size(), hpl.output.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const float tol = 1e-4f + 1e-4f * std::fabs(serial[i]);
    ASSERT_NEAR(serial[i], opencl.output[i], tol) << "row " << i;
    ASSERT_NEAR(serial[i], hpl.output[i], tol) << "row " << i;
  }
}

TEST(BenchmarkCorrectness, ReductionMatchesSerial) {
  bs::ReductionConfig config;
  config.elements = 1 << 16;
  config.groups = 16;
  config.local_size = 64;

  const double serial = bs::reduction_serial(config);
  const bs::ReductionRun opencl = bs::reduction_opencl(config, tesla());
  const bs::ReductionRun hpl = bs::reduction_hpl(config, hpl_tesla());

  const double tol = 0.05 + 1e-4 * std::fabs(serial);
  EXPECT_NEAR(serial, opencl.sum, tol);
  EXPECT_NEAR(serial, hpl.sum, tol);
}

TEST(BenchmarkCorrectness, TimingsArePopulated) {
  bs::ReductionConfig config;
  config.elements = 1 << 14;
  config.groups = 8;
  config.local_size = 32;

  const bs::ReductionRun opencl = bs::reduction_opencl(config, tesla());
  const bs::ReductionRun hpl = bs::reduction_hpl(config, hpl_tesla());

  EXPECT_GT(opencl.timings.kernel_sim_seconds, 0);
  EXPECT_GT(opencl.timings.transfer_sim_seconds, 0);
  EXPECT_GT(hpl.timings.kernel_sim_seconds, 0);
  EXPECT_GE(hpl.timings.host_seconds, 0);
}

}  // namespace
