// The asynchronous command pipeline: enqueue_* returns immediately with an
// Event, a dedicated worker drains each queue in order, and the host only
// blocks in wait()/finish(). Invariants under test:
//   * enqueue is non-blocking (an in-flight command is observably not
//     Complete after enqueue returns);
//   * the Event status lifecycle ends at Complete, and the simulated
//     timeline still tiles exactly as in synchronous mode;
//   * finish() genuinely blocks until results are visible to the host;
//   * wait-lists order commands across queues;
//   * queues on different devices execute concurrently (overlapping host
//     wall-clock windows);
//   * HPL_SYNC-style synchronous mode produces bit-identical results.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "clsim/runtime.hpp"

namespace clsim = hplrepro::clsim;

namespace {

const char* kScaleSource = R"(
__kernel void scale(__global float* data, float a) {
  size_t i = get_global_id(0);
  data[i] = a * data[i];
}
)";

// Enough work items that the worker is still busy when enqueue returns.
constexpr std::size_t kHeavyItems = 1 << 18;

struct QueueFixture {
  explicit QueueFixture(const std::string& device_name)
      : device(*clsim::Platform::get().device_by_name(device_name)),
        context(device),
        queue(context),
        program(context, kScaleSource) {
    program.build();
  }

  clsim::Device device;
  clsim::Context context;
  clsim::CommandQueue queue;
  clsim::Program program;
};

TEST(AsyncQueue, EnqueueReturnsBeforeCompletion) {
  QueueFixture f("Tesla");
  std::vector<float> host(kHeavyItems, 1.0f);
  clsim::Buffer buffer(f.context, host.size() * sizeof(float));
  clsim::Kernel kernel(f.program, "scale");
  kernel.set_arg(0, buffer);
  kernel.set_arg(1, 2.0f);

  // A heavy launch takes many milliseconds on the worker while enqueue
  // returns in microseconds; retry so scheduler hiccups cannot flake this.
  bool observed_in_flight = false;
  for (int attempt = 0; attempt < 5 && !observed_in_flight; ++attempt) {
    f.queue.enqueue_write_buffer(buffer, host.data(),
                                 host.size() * sizeof(float));
    const clsim::Event event =
        f.queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(kHeavyItems));
    observed_in_flight = !event.complete();
    f.queue.finish();
    EXPECT_EQ(event.status(), clsim::Event::Status::Complete);
  }
  EXPECT_TRUE(observed_in_flight);
}

TEST(AsyncQueue, FinishBlocksUntilResultsAreVisible) {
  QueueFixture f("Tesla");
  constexpr std::size_t n = 1024;
  std::vector<float> host(n, 3.0f);
  clsim::Buffer buffer(f.context, n * sizeof(float));
  clsim::Kernel kernel(f.program, "scale");
  kernel.set_arg(0, buffer);
  kernel.set_arg(1, 2.0f);

  f.queue.enqueue_write_buffer(buffer, host.data(), n * sizeof(float));
  f.queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n));
  std::vector<float> out(n, 0.0f);
  f.queue.enqueue_read_buffer(buffer, out.data(), n * sizeof(float));
  f.queue.finish();
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 6.0f) << i;
}

TEST(AsyncQueue, TimelineTilesWithoutIntermediateBlocking) {
  // Same tiling invariant as EventProfiling.CommandsTileTheQueueTimeline,
  // but nothing blocks between enqueues: the simulated timeline must be
  // identical no matter how host and worker interleave, because sim
  // timestamps are assigned at drain time.
  QueueFixture f("Tesla");
  constexpr std::size_t n = 512;
  std::vector<float> host(n, 1.0f);
  clsim::Buffer buffer(f.context, n * sizeof(float));
  clsim::Kernel kernel(f.program, "scale");
  kernel.set_arg(0, buffer);
  kernel.set_arg(1, 2.0f);

  std::vector<clsim::Event> events;
  events.push_back(
      f.queue.enqueue_write_buffer(buffer, host.data(), n * sizeof(float)));
  events.push_back(f.queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n)));
  events.push_back(f.queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n)));
  events.push_back(
      f.queue.enqueue_read_buffer(buffer, host.data(), n * sizeof(float)));
  f.queue.finish();

  EXPECT_DOUBLE_EQ(events.front().queued(), 0.0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_LE(events[i].queued(), events[i].submitted());
    EXPECT_LE(events[i].submitted(), events[i].started());
    EXPECT_LE(events[i].started(), events[i].ended());
    if (i > 0) {
      EXPECT_DOUBLE_EQ(events[i].started(), events[i - 1].ended());
    }
  }
  EXPECT_DOUBLE_EQ(events.back().ended(), f.queue.simulated_seconds());
}

TEST(AsyncQueue, WaitListsOrderCommandsAcrossQueues) {
  // Producer queue writes and squares; consumer queue reads back, ordered
  // only by the wait-list (the queues share no worker).
  QueueFixture f("Tesla");
  clsim::CommandQueue other(f.context);
  constexpr std::size_t n = 2048;
  std::vector<float> host(n, 5.0f);
  clsim::Buffer buffer(f.context, n * sizeof(float));
  clsim::Kernel kernel(f.program, "scale");
  kernel.set_arg(0, buffer);
  kernel.set_arg(1, 5.0f);

  const clsim::Event write = f.queue.enqueue_write_buffer(
      buffer, host.data(), n * sizeof(float));
  const clsim::Event launch = f.queue.enqueue_ndrange_kernel(
      kernel, clsim::NDRange(n), std::nullopt, {write});
  std::vector<float> out(n, 0.0f);
  const clsim::Event read = other.enqueue_read_buffer(
      buffer, out.data(), n * sizeof(float), /*offset=*/0, {launch});
  read.wait();
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 25.0f) << i;
}

TEST(AsyncQueue, CopyBufferMovesSubRangesBetweenDevices) {
  // clEnqueueCopyBuffer analogue with offsets: the co-execution merge
  // step relies on sub-range copies that never touch the host pointer.
  QueueFixture tesla("Tesla");
  QueueFixture quadro("Quadro");
  constexpr std::size_t n = 64;
  std::vector<float> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = static_cast<float>(i);
  clsim::Buffer src(tesla.context, n * sizeof(float));
  clsim::Buffer dst(quadro.context, n * sizeof(float));
  std::vector<float> zeros(n, 0.0f);
  const clsim::Event fill_dst = quadro.queue.enqueue_write_buffer(
      dst, zeros.data(), n * sizeof(float));
  const clsim::Event fill_src = tesla.queue.enqueue_write_buffer(
      src, host.data(), n * sizeof(float));

  // Copy elements [16, 48) of src into dst at element 8; runs on the
  // source queue, ordered against both fills by the wait-list.
  const clsim::Event copy = tesla.queue.enqueue_copy_buffer(
      src, dst, 32 * sizeof(float), 16 * sizeof(float), 8 * sizeof(float),
      {fill_src, fill_dst});
  EXPECT_GT(copy.sim_seconds(), 0.0);  // billed as a transfer

  std::vector<float> out(n, -1.0f);
  const clsim::Event read = quadro.queue.enqueue_read_buffer(
      dst, out.data(), n * sizeof(float), 0, {copy});
  read.wait();
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= 8 && i < 40) {
      EXPECT_EQ(out[i], static_cast<float>(i + 8)) << i;
    } else {
      EXPECT_EQ(out[i], 0.0f) << i;
    }
  }
}

TEST(AsyncQueue, CopyBufferRejectsBadRanges) {
  QueueFixture f("Tesla");
  clsim::Buffer a(f.context, 64);
  clsim::Buffer b(f.context, 64);
  EXPECT_THROW(f.queue.enqueue_copy_buffer(a, b, 48, 32, 0),
               clsim::RuntimeError);  // source overrun
  EXPECT_THROW(f.queue.enqueue_copy_buffer(a, b, 48, 0, 32),
               clsim::RuntimeError);  // destination overrun
  EXPECT_THROW(f.queue.enqueue_copy_buffer(a, a, 32, 0, 16),
               clsim::RuntimeError);  // same storage, overlapping
  // Disjoint ranges within one buffer are legal.
  EXPECT_NO_THROW(f.queue.enqueue_copy_buffer(a, a, 16, 0, 32));
  f.queue.finish();
}

TEST(AsyncQueue, DeferredErrorsSurfaceOnWait) {
  // An execution error (fuel exhaustion / trap) raised on the worker is
  // stored on the Event; a later wait() — or finish() — rethrows it once.
  QueueFixture f("Tesla");
  const char* divergent = R"(
__kernel void div_barrier(__global float* x) {
  if (get_local_id(0) < 2) barrier(CLK_LOCAL_MEM_FENCE);
  x[get_global_id(0)] = 1.0f;
}
)";
  clsim::Program program(f.context, divergent);
  program.build();
  clsim::Kernel kernel(program, "div_barrier");
  clsim::Buffer buffer(f.context, 8 * sizeof(float));
  kernel.set_arg(0, buffer);

  const clsim::Event event = f.queue.enqueue_ndrange_kernel(
      kernel, clsim::NDRange(8), clsim::NDRange(4));
  EXPECT_THROW(event.wait(), hplrepro::clc::TrapError);
  // The queue remembers its first deferred error and rethrows it exactly
  // once from finish(); after that the queue is clean and usable.
  EXPECT_THROW(f.queue.finish(), hplrepro::clc::TrapError);
  f.queue.finish();
}

TEST(AsyncQueue, MultiDeviceQueuesOverlapInWallClock) {
  // Two devices, two workers: heavy launches issued back to back must
  // execute concurrently. Retry to absorb scheduler noise.
  QueueFixture tesla("Tesla");
  QueueFixture quadro("Quadro");
  std::vector<float> a(kHeavyItems, 1.0f), b(kHeavyItems, 1.0f);
  clsim::Buffer buf_a(tesla.context, a.size() * sizeof(float));
  clsim::Buffer buf_b(quadro.context, b.size() * sizeof(float));
  clsim::Kernel ka(tesla.program, "scale");
  ka.set_arg(0, buf_a);
  ka.set_arg(1, 2.0f);
  clsim::Kernel kb(quadro.program, "scale");
  kb.set_arg(0, buf_b);
  kb.set_arg(1, 3.0f);

  bool overlapped = false;
  for (int attempt = 0; attempt < 8 && !overlapped; ++attempt) {
    tesla.queue.enqueue_write_buffer(buf_a, a.data(),
                                     a.size() * sizeof(float));
    quadro.queue.enqueue_write_buffer(buf_b, b.data(),
                                      b.size() * sizeof(float));
    const clsim::Event ea =
        tesla.queue.enqueue_ndrange_kernel(ka, clsim::NDRange(kHeavyItems));
    const clsim::Event eb =
        quadro.queue.enqueue_ndrange_kernel(kb, clsim::NDRange(kHeavyItems));
    tesla.queue.finish();
    quadro.queue.finish();
    overlapped = std::max(ea.host_started_us(), eb.host_started_us()) <
                 std::min(ea.host_ended_us(), eb.host_ended_us());
  }
  EXPECT_TRUE(overlapped);

  // Each queue owns an independent simulated timeline regardless of how
  // the real execution interleaved.
  EXPECT_GT(tesla.queue.simulated_seconds(), 0.0);
  EXPECT_GT(quadro.queue.simulated_seconds(), 0.0);
}

TEST(AsyncQueue, SyncModeMatchesAsyncBitForBit) {
  auto run = [](bool async) {
    clsim::set_async_enabled(async);
    QueueFixture f("Quadro");
    constexpr std::size_t n = 4096;
    std::vector<float> host(n);
    for (std::size_t i = 0; i < n; ++i) {
      host[i] = static_cast<float>(i) * 0.25f;
    }
    clsim::Buffer buffer(f.context, n * sizeof(float));
    clsim::Kernel kernel(f.program, "scale");
    kernel.set_arg(0, buffer);
    kernel.set_arg(1, 1.5f);

    f.queue.enqueue_write_buffer(buffer, host.data(), n * sizeof(float));
    for (int rep = 0; rep < 3; ++rep) {
      f.queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n));
    }
    std::vector<float> out(n, 0.0f);
    f.queue.enqueue_read_buffer(buffer, out.data(), n * sizeof(float));
    f.queue.finish();
    return out;
  };

  const std::vector<float> async_out = run(true);
  const std::vector<float> sync_out = run(false);
  clsim::set_async_enabled(true);
  EXPECT_EQ(async_out, sync_out);
}

TEST(AsyncQueue, SyncModeCompletesAtEnqueue) {
  clsim::set_async_enabled(false);
  QueueFixture f("Tesla");
  constexpr std::size_t n = 256;
  std::vector<float> host(n, 2.0f);
  clsim::Buffer buffer(f.context, n * sizeof(float));

  // In synchronous mode every enqueue drains the queue before returning:
  // the escape hatch restores the old blocking semantics exactly.
  const clsim::Event event =
      f.queue.enqueue_write_buffer(buffer, host.data(), n * sizeof(float));
  EXPECT_TRUE(event.complete());
  std::vector<float> out(n, 0.0f);
  const clsim::Event read =
      f.queue.enqueue_read_buffer(buffer, out.data(), n * sizeof(float));
  EXPECT_TRUE(read.complete());
  EXPECT_EQ(out, host);
  clsim::set_async_enabled(true);
}

}  // namespace
