// CoalescingTracker unit tests: the transaction counts that feed the GPU
// timing model must follow the Fermi segment rules the tracker implements.

#include <gtest/gtest.h>

#include "clsim/coalescing.hpp"

using hplrepro::clsim::CoalescingTracker;

namespace {

TEST(Coalescing, FullyCoalescedWarpUsesMinimalSegments) {
  CoalescingTracker tracker(32, 32);
  // 32 lanes touch consecutive floats: 128 bytes = 4 segments of 32 B.
  for (std::uint64_t lane = 0; lane < 32; ++lane) {
    tracker.global_access(/*pc=*/1, lane, /*buffer=*/0, lane * 4, 4, false);
  }
  EXPECT_EQ(tracker.finish(), 4u);
}

TEST(Coalescing, StridedWarpPaysOneSegmentPerLane) {
  CoalescingTracker tracker(32, 32);
  // Stride of 128 bytes: every lane lands in its own segment.
  for (std::uint64_t lane = 0; lane < 32; ++lane) {
    tracker.global_access(1, lane, 0, lane * 128, 4, false);
  }
  EXPECT_EQ(tracker.finish(), 32u);
}

TEST(Coalescing, SameAddressBroadcastIsOneSegment) {
  CoalescingTracker tracker(32, 32);
  for (std::uint64_t lane = 0; lane < 32; ++lane) {
    tracker.global_access(1, lane, 0, 4096, 4, false);
  }
  EXPECT_EQ(tracker.finish(), 1u);
}

TEST(Coalescing, SeparateWarpsCountSeparately) {
  CoalescingTracker tracker(32, 32);
  // Two warps, each coalesced: 4 + 4 segments.
  for (std::uint64_t item = 0; item < 64; ++item) {
    tracker.global_access(1, item, 0, item * 4, 4, false);
  }
  EXPECT_EQ(tracker.finish(), 8u);
}

TEST(Coalescing, DistinctInstructionsTrackIndependently) {
  CoalescingTracker tracker(32, 32);
  for (std::uint64_t lane = 0; lane < 32; ++lane) {
    tracker.global_access(1, lane, 0, lane * 4, 4, false);       // coalesced
    tracker.global_access(2, lane, 0, lane * 256, 4, false);     // scattered
  }
  EXPECT_EQ(tracker.finish(), 4u + 32u);
}

TEST(Coalescing, DifferentBuffersNeverMerge) {
  CoalescingTracker tracker(32, 32);
  for (std::uint64_t lane = 0; lane < 32; ++lane) {
    tracker.global_access(1, lane, /*buffer=*/lane % 2, 0, 4, false);
  }
  // Same offset but two buffers: 2 segments.
  EXPECT_EQ(tracker.finish(), 2u);
}

TEST(Coalescing, AccessSpanningSegmentsCountsBoth) {
  CoalescingTracker tracker(32, 32);
  // An 8-byte access at offset 28 crosses the 32-byte boundary.
  tracker.global_access(1, 0, 0, 28, 8, false);
  EXPECT_EQ(tracker.finish(), 2u);
}

TEST(Coalescing, WarpSizeOneCountsEveryAccess) {
  CoalescingTracker tracker(1, 32);
  for (std::uint64_t item = 0; item < 8; ++item) {
    tracker.global_access(1, item, 0, item * 4, 4, false);
  }
  // Each item forms its own warp: 8 transactions even though consecutive.
  EXPECT_EQ(tracker.finish(), 8u);
}

TEST(Coalescing, ResetClearsState) {
  CoalescingTracker tracker(32, 32);
  tracker.global_access(1, 0, 0, 0, 4, false);
  tracker.reset();
  EXPECT_EQ(tracker.finish(), 0u);
}

TEST(Coalescing, FinishIsIdempotent) {
  CoalescingTracker tracker(32, 32);
  tracker.global_access(1, 0, 0, 0, 4, false);
  EXPECT_EQ(tracker.finish(), 1u);
  EXPECT_EQ(tracker.finish(), 0u);
}

}  // namespace
