// The C-style OpenCL host API layer: happy path end to end, plus the
// error-code behaviour real OpenCL programs rely on.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "clsim/cl_api.hpp"
#include "clsim/runtime.hpp"

namespace {

TEST(ClApi, PlatformAndDeviceDiscovery) {
  cl_uint num_platforms = 0;
  ASSERT_EQ(clGetPlatformIDs(0, nullptr, &num_platforms), CL_SUCCESS);
  ASSERT_EQ(num_platforms, 1u);

  cl_platform_id platform;
  ASSERT_EQ(clGetPlatformIDs(1, &platform, nullptr), CL_SUCCESS);

  cl_uint num_gpus = 0;
  ASSERT_EQ(clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 0, nullptr,
                           &num_gpus),
            CL_SUCCESS);
  EXPECT_EQ(num_gpus, 2u);  // Tesla + Quadro

  cl_uint num_cpus = 0;
  ASSERT_EQ(clGetDeviceIDs(platform, CL_DEVICE_TYPE_CPU, 0, nullptr,
                           &num_cpus),
            CL_SUCCESS);
  EXPECT_EQ(num_cpus, 1u);

  cl_device_id gpu;
  ASSERT_EQ(clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &gpu, nullptr),
            CL_SUCCESS);
  char name[128];
  ASSERT_EQ(clGetDeviceInfo(gpu, CL_DEVICE_NAME, sizeof(name), name, nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(name).find("Tesla"), std::string::npos);
}

TEST(ClApi, EndToEndVectorAdd) {
  const char* src = R"(
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c) {
  size_t i = get_global_id(0);
  c[i] = a[i] + b[i];
}
)";
  cl_int err;
  cl_platform_id platform;
  ASSERT_EQ(clGetPlatformIDs(1, &platform, nullptr), CL_SUCCESS);
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr),
            CL_SUCCESS);

  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  constexpr std::size_t n = 256;
  std::vector<float> a(n, 2.0f), b(n, 3.0f), c(n, 0.0f);

  cl_mem a_buf = clCreateBuffer(context, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                                n * 4, a.data(), &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem b_buf = clCreateBuffer(context, CL_MEM_READ_ONLY, n * 4, nullptr,
                                &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_mem c_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY, n * 4, nullptr,
                                &err);
  ASSERT_EQ(err, CL_SUCCESS);

  ASSERT_EQ(clEnqueueWriteBuffer(queue, b_buf, CL_TRUE, 0, n * 4, b.data(), 0,
                                 nullptr, nullptr),
            CL_SUCCESS);

  cl_program program =
      clCreateProgramWithSource(context, 1, &src, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 1, &device, nullptr, nullptr, nullptr),
            CL_SUCCESS);

  cl_kernel kernel = clCreateKernel(program, "vadd", &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &a_buf), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof(cl_mem), &b_buf), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 2, sizeof(cl_mem), &c_buf), CL_SUCCESS);

  const std::size_t global = n;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clFinish(queue), CL_SUCCESS);
  ASSERT_EQ(clEnqueueReadBuffer(queue, c_buf, CL_TRUE, 0, n * 4, c.data(), 0,
                                nullptr, nullptr),
            CL_SUCCESS);

  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(c[i], 5.0f) << i;

  EXPECT_EQ(clReleaseKernel(kernel), CL_SUCCESS);
  EXPECT_EQ(clReleaseProgram(program), CL_SUCCESS);
  EXPECT_EQ(clReleaseMemObject(a_buf), CL_SUCCESS);
  EXPECT_EQ(clReleaseMemObject(b_buf), CL_SUCCESS);
  EXPECT_EQ(clReleaseMemObject(c_buf), CL_SUCCESS);
  EXPECT_EQ(clReleaseCommandQueue(queue), CL_SUCCESS);
  EXPECT_EQ(clReleaseContext(context), CL_SUCCESS);
}

TEST(ClApi, BuildFailureReturnsCodeAndLog) {
  const char* bad_src = "__kernel void k(__global int* o) { o[0] = nope; }";
  cl_int err;
  cl_platform_id platform;
  clGetPlatformIDs(1, &platform, nullptr);
  cl_device_id device;
  clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  cl_program program =
      clCreateProgramWithSource(context, 1, &bad_src, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  EXPECT_EQ(clBuildProgram(program, 1, &device, nullptr, nullptr, nullptr),
            CL_BUILD_PROGRAM_FAILURE);

  char log[4096] = {0};
  EXPECT_EQ(clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG,
                                  sizeof(log), log, nullptr),
            CL_SUCCESS);
  EXPECT_NE(std::string(log).find("undeclared identifier"),
            std::string::npos);

  // Kernel creation from an unbuilt program must fail.
  cl_kernel kernel = clCreateKernel(program, "k", &err);
  EXPECT_EQ(kernel, nullptr);
  EXPECT_EQ(err, CL_INVALID_PROGRAM_EXECUTABLE);

  clReleaseProgram(program);
  clReleaseContext(context);
}

TEST(ClApi, BuildOptionsAcceptedAndValidated) {
  const char* src = "__kernel void k(__global int* o) { o[0] = 2 * 21; }";
  cl_int err;
  cl_platform_id platform;
  clGetPlatformIDs(1, &platform, nullptr);
  cl_device_id device;
  clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  cl_program program =
      clCreateProgramWithSource(context, 1, &src, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  // Unknown options are rejected up front, before any compilation.
  EXPECT_EQ(clBuildProgram(program, 1, &device, "-fbogus", nullptr, nullptr),
            CL_INVALID_BUILD_OPTIONS);

  // Real driver options select the optimization level.
  EXPECT_EQ(clBuildProgram(program, 1, &device, "-cl-opt-disable", nullptr,
                           nullptr),
            CL_SUCCESS);
  EXPECT_EQ(clBuildProgram(program, 1, &device, "-cl-mad-enable -O2",
                           nullptr, nullptr),
            CL_SUCCESS);

  clReleaseProgram(program);
  clReleaseContext(context);
}

TEST(ClApi, ErrorCodesOnMisuse) {
  EXPECT_EQ(clGetPlatformIDs(0, nullptr, nullptr), CL_INVALID_VALUE);
  EXPECT_EQ(clFinish(nullptr), CL_INVALID_COMMAND_QUEUE);
  EXPECT_EQ(clReleaseMemObject(nullptr), CL_INVALID_MEM_OBJECT);

  cl_int err;
  cl_platform_id platform;
  clGetPlatformIDs(1, &platform, nullptr);
  cl_device_id device;
  clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);

  // Zero-sized buffer.
  cl_mem bad = clCreateBuffer(context, CL_MEM_READ_WRITE, 0, nullptr, &err);
  EXPECT_EQ(bad, nullptr);
  EXPECT_EQ(err, CL_INVALID_BUFFER_SIZE);

  // Kernel with a wrong name.
  const char* src = "__kernel void real(__global int* o) { o[0] = 1; }";
  cl_program program =
      clCreateProgramWithSource(context, 1, &src, nullptr, &err);
  clBuildProgram(program, 1, &device, nullptr, nullptr, nullptr);
  cl_kernel kernel = clCreateKernel(program, "fake", &err);
  EXPECT_EQ(kernel, nullptr);
  EXPECT_EQ(err, CL_INVALID_KERNEL_NAME);

  clReleaseProgram(program);
  clReleaseContext(context);
}

TEST(ClApi, KernelArgNegativePaths) {
  const char* src = R"(
__kernel void scale(__global float* x, float factor) {
  size_t i = get_global_id(0);
  x[i] = factor * x[i];
}
)";
  cl_int err;
  cl_platform_id platform;
  ASSERT_EQ(clGetPlatformIDs(1, &platform, nullptr), CL_SUCCESS);
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr),
            CL_SUCCESS);
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_program program =
      clCreateProgramWithSource(context, 1, &src, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 1, &device, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "scale", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  float factor = 2.0f;
  // Index past the last parameter (the kernel has args 0 and 1).
  EXPECT_EQ(clSetKernelArg(kernel, 2, sizeof(factor), &factor),
            CL_INVALID_ARG_INDEX);
  EXPECT_EQ(clSetKernelArg(kernel, 99, sizeof(factor), &factor),
            CL_INVALID_ARG_INDEX);
  // A size no scalar type has.
  EXPECT_EQ(clSetKernelArg(kernel, 1, 3, &factor), CL_INVALID_ARG_SIZE);
  // NULL value with zero size describes no argument at all.
  EXPECT_EQ(clSetKernelArg(kernel, 1, 0, nullptr), CL_INVALID_ARG_SIZE);
  // The failures above must not have corrupted the kernel: setting the
  // same slots correctly still works.
  cl_mem buf = clCreateBuffer(context, CL_MEM_READ_WRITE, 16 * 4, nullptr,
                              &err);
  ASSERT_EQ(err, CL_SUCCESS);
  EXPECT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &buf), CL_SUCCESS);
  EXPECT_EQ(clSetKernelArg(kernel, 1, sizeof(factor), &factor), CL_SUCCESS);

  clReleaseMemObject(buf);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseContext(context);
}

TEST(ClApi, ZeroDimensionNDRangeIsRejectedWithoutWedgingTheQueue) {
  const char* src = R"(
__kernel void fill(__global float* x) {
  x[get_global_id(0)] = 7.0f;
}
)";
  cl_int err;
  cl_platform_id platform;
  ASSERT_EQ(clGetPlatformIDs(1, &platform, nullptr), CL_SUCCESS);
  cl_device_id device;
  ASSERT_EQ(clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr),
            CL_SUCCESS);
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  cl_program program =
      clCreateProgramWithSource(context, 1, &src, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clBuildProgram(program, 1, &device, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "fill", &err);
  ASSERT_EQ(err, CL_SUCCESS);

  constexpr std::size_t n = 64;
  std::vector<float> host(n, 0.0f);
  cl_mem buf = clCreateBuffer(context, CL_MEM_READ_WRITE, n * 4, nullptr,
                              &err);
  ASSERT_EQ(err, CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &buf), CL_SUCCESS);

  // A zero-sized dimension is an enqueue-time error in any position; the
  // command never reaches the queue, no event is produced, and nothing
  // hangs even though the queue runs asynchronously.
  const std::size_t zero1[1] = {0};
  EXPECT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, zero1, nullptr,
                                   0, nullptr, nullptr),
            CL_INVALID_GLOBAL_WORK_SIZE);
  const std::size_t zero2a[2] = {0, 8};
  const std::size_t zero2b[2] = {8, 0};
  cl_event event = nullptr;
  EXPECT_EQ(clEnqueueNDRangeKernel(queue, kernel, 2, nullptr, zero2a, nullptr,
                                   0, nullptr, &event),
            CL_INVALID_GLOBAL_WORK_SIZE);
  EXPECT_EQ(event, nullptr);
  EXPECT_EQ(clEnqueueNDRangeKernel(queue, kernel, 2, nullptr, zero2b, nullptr,
                                   0, nullptr, nullptr),
            CL_INVALID_GLOBAL_WORK_SIZE);

  // The queue is still healthy: it drains, accepts a valid launch, and the
  // launch runs to completion.
  EXPECT_EQ(clFinish(queue), CL_SUCCESS);
  const std::size_t global = n;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                   nullptr, 0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clEnqueueReadBuffer(queue, buf, CL_TRUE, 0, n * 4, host.data(),
                                0, nullptr, nullptr),
            CL_SUCCESS);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(host[i], 7.0f) << i;

  clReleaseMemObject(buf);
  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

// Fixture for the event API: one context + queue on the first GPU, plus a
// built kernel that squares a buffer in place.
class ClApiEvents : public ::testing::Test {
protected:
  void SetUp() override {
    cl_int err;
    ASSERT_EQ(clGetPlatformIDs(1, &platform_, nullptr), CL_SUCCESS);
    ASSERT_EQ(clGetDeviceIDs(platform_, CL_DEVICE_TYPE_GPU, 1, &device_,
                             nullptr),
              CL_SUCCESS);
    context_ = clCreateContext(nullptr, 1, &device_, nullptr, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    queue_ = clCreateCommandQueue(context_, device_, 0, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    const char* src = R"(
__kernel void square(__global float* x) {
  size_t i = get_global_id(0);
  x[i] = x[i] * x[i];
}
)";
    program_ = clCreateProgramWithSource(context_, 1, &src, nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    ASSERT_EQ(clBuildProgram(program_, 1, &device_, nullptr, nullptr,
                             nullptr),
              CL_SUCCESS);
    kernel_ = clCreateKernel(program_, "square", &err);
    ASSERT_EQ(err, CL_SUCCESS);
  }

  void TearDown() override {
    clReleaseKernel(kernel_);
    clReleaseProgram(program_);
    clReleaseCommandQueue(queue_);
    clReleaseContext(context_);
  }

  cl_platform_id platform_;
  cl_device_id device_;
  cl_context context_;
  cl_command_queue queue_;
  cl_program program_;
  cl_kernel kernel_;
};

TEST_F(ClApiEvents, WaitListChainsCommandsAndWaitForEventsBlocks) {
  cl_int err;
  constexpr std::size_t n = 64;
  std::vector<float> host(n, 3.0f), out(n, 0.0f);
  cl_mem buf = clCreateBuffer(context_, CL_MEM_READ_WRITE, n * 4, nullptr,
                              &err);
  ASSERT_EQ(err, CL_SUCCESS);

  // Non-blocking write -> kernel (waits on write) -> non-blocking read
  // (waits on kernel): the host only blocks in clWaitForEvents.
  cl_event write_ev = nullptr;
  ASSERT_EQ(clEnqueueWriteBuffer(queue_, buf, CL_FALSE, 0, n * 4, host.data(),
                                 0, nullptr, &write_ev),
            CL_SUCCESS);
  ASSERT_NE(write_ev, nullptr);

  ASSERT_EQ(clSetKernelArg(kernel_, 0, sizeof(cl_mem), &buf), CL_SUCCESS);
  const std::size_t global = n;
  cl_event kernel_ev = nullptr;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue_, kernel_, 1, nullptr, &global,
                                   nullptr, 1, &write_ev, &kernel_ev),
            CL_SUCCESS);
  ASSERT_NE(kernel_ev, nullptr);

  cl_event read_ev = nullptr;
  ASSERT_EQ(clEnqueueReadBuffer(queue_, buf, CL_FALSE, 0, n * 4, out.data(),
                                1, &kernel_ev, &read_ev),
            CL_SUCCESS);
  ASSERT_NE(read_ev, nullptr);

  ASSERT_EQ(clWaitForEvents(1, &read_ev), CL_SUCCESS);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 9.0f) << i;

  // After the chain completes, every event reports CL_COMPLETE.
  for (cl_event ev : {write_ev, kernel_ev, read_ev}) {
    cl_int status = -1;
    std::size_t size = 0;
    ASSERT_EQ(clGetEventInfo(ev, CL_EVENT_COMMAND_EXECUTION_STATUS,
                             sizeof(status), &status, &size),
              CL_SUCCESS);
    EXPECT_EQ(status, CL_COMPLETE);
    EXPECT_EQ(size, sizeof(cl_int));
  }

  EXPECT_EQ(clReleaseEvent(write_ev), CL_SUCCESS);
  EXPECT_EQ(clReleaseEvent(kernel_ev), CL_SUCCESS);
  EXPECT_EQ(clReleaseEvent(read_ev), CL_SUCCESS);
  clReleaseMemObject(buf);
}

TEST_F(ClApiEvents, BlockingWriteYieldsCompleteEvent) {
  cl_int err;
  std::vector<float> host(16, 1.0f);
  cl_mem buf = clCreateBuffer(context_, CL_MEM_READ_WRITE, 64, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  cl_event ev = nullptr;
  ASSERT_EQ(clEnqueueWriteBuffer(queue_, buf, CL_TRUE, 0, 64, host.data(), 0,
                                 nullptr, &ev),
            CL_SUCCESS);
  ASSERT_NE(ev, nullptr);
  cl_int status = -1;
  ASSERT_EQ(clGetEventInfo(ev, CL_EVENT_COMMAND_EXECUTION_STATUS,
                           sizeof(status), &status, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(status, CL_COMPLETE);  // the call blocked until completion

  EXPECT_EQ(clRetainEvent(ev), CL_SUCCESS);
  EXPECT_EQ(clReleaseEvent(ev), CL_SUCCESS);  // refcount 2 -> 1
  // Still usable after the first release.
  EXPECT_EQ(clWaitForEvents(1, &ev), CL_SUCCESS);
  EXPECT_EQ(clReleaseEvent(ev), CL_SUCCESS);
  clReleaseMemObject(buf);
}

TEST_F(ClApiEvents, EventErrorCodes) {
  EXPECT_EQ(clWaitForEvents(0, nullptr), CL_INVALID_VALUE);
  cl_event null_ev = nullptr;
  EXPECT_EQ(clWaitForEvents(1, &null_ev), CL_INVALID_EVENT);
  EXPECT_EQ(clGetEventInfo(nullptr, CL_EVENT_COMMAND_EXECUTION_STATUS, 4,
                           nullptr, nullptr),
            CL_INVALID_EVENT);
  EXPECT_EQ(clRetainEvent(nullptr), CL_INVALID_EVENT);
  EXPECT_EQ(clReleaseEvent(nullptr), CL_INVALID_EVENT);

  cl_int err;
  cl_mem buf = clCreateBuffer(context_, CL_MEM_READ_WRITE, 64, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);
  float data[16] = {0};

  // Malformed wait lists: count without a list, a list without a count,
  // and a null entry.
  EXPECT_EQ(clEnqueueWriteBuffer(queue_, buf, CL_TRUE, 0, 64, data, 1,
                                 nullptr, nullptr),
            CL_INVALID_EVENT_WAIT_LIST);
  cl_event ev = nullptr;
  ASSERT_EQ(clEnqueueWriteBuffer(queue_, buf, CL_TRUE, 0, 64, data, 0,
                                 nullptr, &ev),
            CL_SUCCESS);
  EXPECT_EQ(clEnqueueReadBuffer(queue_, buf, CL_TRUE, 0, 64, data, 0, &ev,
                                nullptr),
            CL_INVALID_EVENT_WAIT_LIST);
  cl_event bad_list[2] = {ev, nullptr};
  EXPECT_EQ(clEnqueueReadBuffer(queue_, buf, CL_TRUE, 0, 64, data, 2,
                                bad_list, nullptr),
            CL_INVALID_EVENT_WAIT_LIST);

  // Unsupported param / short buffer on clGetEventInfo.
  cl_int status = 0;
  EXPECT_EQ(clGetEventInfo(ev, 0x1234, sizeof(status), &status, nullptr),
            CL_INVALID_VALUE);
  EXPECT_EQ(clGetEventInfo(ev, CL_EVENT_COMMAND_EXECUTION_STATUS, 1, &status,
                           nullptr),
            CL_INVALID_VALUE);

  clReleaseEvent(ev);
  clReleaseMemObject(buf);
}

// Builds a kernel whose execution traps (divergent barrier) on the
// fixture's context; the trap is only detectable when the command runs.
class ClApiDeferredErrors : public ClApiEvents {
protected:
  void SetUp() override {
    ClApiEvents::SetUp();
    cl_int err;
    const char* src = R"(
__kernel void div_barrier(__global float* x) {
  if (get_local_id(0) < 2) barrier(CLK_LOCAL_MEM_FENCE);
  x[get_global_id(0)] = 1.0f;
}
)";
    trap_program_ = clCreateProgramWithSource(context_, 1, &src, nullptr,
                                              &err);
    ASSERT_EQ(err, CL_SUCCESS);
    ASSERT_EQ(clBuildProgram(trap_program_, 1, &device_, nullptr, nullptr,
                             nullptr),
              CL_SUCCESS);
    trap_kernel_ = clCreateKernel(trap_program_, "div_barrier", &err);
    ASSERT_EQ(err, CL_SUCCESS);
    buf_ = clCreateBuffer(context_, CL_MEM_READ_WRITE, 8 * sizeof(float),
                          nullptr, &err);
    ASSERT_EQ(err, CL_SUCCESS);
    ASSERT_EQ(clSetKernelArg(trap_kernel_, 0, sizeof(cl_mem), &buf_),
              CL_SUCCESS);
  }

  void TearDown() override {
    hplrepro::clsim::set_async_enabled(true);
    clReleaseMemObject(buf_);
    clReleaseKernel(trap_kernel_);
    clReleaseProgram(trap_program_);
    ClApiEvents::TearDown();
  }

  cl_int enqueue_trap(cl_event* event_out = nullptr) {
    const std::size_t global = 8, local = 4;
    return clEnqueueNDRangeKernel(queue_, trap_kernel_, 1, nullptr, &global,
                                  &local, 0, nullptr, event_out);
  }

  cl_program trap_program_;
  cl_kernel trap_kernel_;
  cl_mem buf_;
};

TEST_F(ClApiDeferredErrors, SyncAndAsyncModesReportTheSameCode) {
  // Async: the enqueue succeeds, the failure surfaces at clFinish.
  hplrepro::clsim::set_async_enabled(true);
  ASSERT_EQ(enqueue_trap(), CL_SUCCESS);
  EXPECT_EQ(clFinish(queue_), CL_OUT_OF_RESOURCES);
  EXPECT_EQ(clFinish(queue_), CL_SUCCESS);  // reported exactly once

  // Sync: the queue drains inside the enqueue, so the same failure must
  // surface there with the same code — not as a validation error.
  hplrepro::clsim::set_async_enabled(false);
  EXPECT_EQ(enqueue_trap(), CL_OUT_OF_RESOURCES);
  EXPECT_EQ(clFinish(queue_), CL_SUCCESS);  // already consumed at enqueue
}

TEST_F(ClApiDeferredErrors, BlockingWaitConsumesTheQueueError) {
  hplrepro::clsim::set_async_enabled(true);
  cl_event trap_ev = nullptr;
  ASSERT_EQ(enqueue_trap(&trap_ev), CL_SUCCESS);

  // A blocking read chained on the failed launch reports the failure...
  float out[8] = {0};
  EXPECT_EQ(clEnqueueReadBuffer(queue_, buf_, CL_TRUE, 0, sizeof(out), out,
                                1, &trap_ev, nullptr),
            CL_OUT_OF_RESOURCES);
  // ...and clFinish does not report the already-surfaced error again.
  EXPECT_EQ(clFinish(queue_), CL_SUCCESS);
  clReleaseEvent(trap_ev);
}

TEST(ClApi, RetainReleaseCounting) {
  cl_int err;
  cl_platform_id platform;
  clGetPlatformIDs(1, &platform, nullptr);
  cl_device_id device;
  clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  cl_mem mem = clCreateBuffer(context, CL_MEM_READ_WRITE, 64, nullptr, &err);
  ASSERT_EQ(err, CL_SUCCESS);

  EXPECT_EQ(clRetainMemObject(mem), CL_SUCCESS);
  EXPECT_EQ(clReleaseMemObject(mem), CL_SUCCESS);  // refcount 2 -> 1
  // The handle must still be usable after the first release.
  std::int32_t value = 99;
  cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);
  EXPECT_EQ(clEnqueueWriteBuffer(queue, mem, CL_TRUE, 0, 4, &value, 0,
                                 nullptr, nullptr),
            CL_SUCCESS);
  EXPECT_EQ(clReleaseMemObject(mem), CL_SUCCESS);  // now destroyed
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

}  // namespace
