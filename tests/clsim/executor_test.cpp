// Executor behaviour: NDRange geometry, automatic local-range selection,
// divergent-barrier detection, device capability checks, and stats
// plumbing.

#include <gtest/gtest.h>

#include <numeric>

#include "clsim/runtime.hpp"

namespace clsim = hplrepro::clsim;

namespace {

clsim::Device tesla() {
  return *clsim::Platform::get().device_by_name("Tesla");
}

TEST(Executor, ChooseLocalRangeDividesEvenly) {
  for (std::size_t n : {1u, 2u, 7u, 64u, 100u, 1000u, 1021u, 4096u}) {
    const auto local = clsim::choose_local_range(clsim::NDRange(n));
    EXPECT_EQ(n % local.sizes[0], 0u) << n;
    EXPECT_LE(local.sizes[0], 256u);
  }
  const auto local2d = clsim::choose_local_range(clsim::NDRange(64, 48));
  EXPECT_EQ(64 % local2d.sizes[0], 0u);
  EXPECT_EQ(48 % local2d.sizes[1], 0u);
  EXPECT_LE(local2d.sizes[0] * local2d.sizes[1], 256u);
}

TEST(Executor, ChooseLocalRangeBalancesSquareGlobals) {
  // Greedy dimension-0-first factoring used to produce 256x1 strips; the
  // divisor search must pick the balanced tile instead.
  const auto square = clsim::choose_local_range(clsim::NDRange(512, 512));
  EXPECT_EQ(square.sizes[0], 16u);
  EXPECT_EQ(square.sizes[1], 16u);

  const auto small = clsim::choose_local_range(clsim::NDRange(64, 64));
  EXPECT_EQ(small.sizes[0], 16u);
  EXPECT_EQ(small.sizes[1], 16u);  // 16x16 fills the 256 budget exactly
}

TEST(Executor, ChooseLocalRangeHandlesRaggedGlobals) {
  // 512x3: dimension 1 only divides by 1 or 3; keeping the 3 maximizes
  // the minimum extent, and dimension 0 fills the rest of the budget.
  const auto ragged = clsim::choose_local_range(clsim::NDRange(512, 3));
  EXPECT_EQ(ragged.sizes[0], 64u);
  EXPECT_EQ(ragged.sizes[1], 3u);
  EXPECT_EQ(512 % ragged.sizes[0], 0u);
}

TEST(Executor, ChooseLocalRangeHandlesPrimeExtents) {
  // A prime extent has no divisor between 1 and itself: (251, 4) can only
  // use 251x1 (fits the 256 budget) or 1xb; more covered items wins.
  const auto prime = clsim::choose_local_range(clsim::NDRange(251, 4));
  EXPECT_EQ(prime.sizes[0], 251u);
  EXPECT_EQ(prime.sizes[1], 1u);

  // A square prime tile fits whole.
  const auto sq_prime = clsim::choose_local_range(clsim::NDRange(13, 13));
  EXPECT_EQ(sq_prime.sizes[0], 13u);
  EXPECT_EQ(sq_prime.sizes[1], 13u);
}

TEST(Executor, LaunchSliceRunsOnlyItsGroupsWithFullGeometry) {
  // A slice narrows execution to a run of work-groups, but work-items
  // must still observe the FULL launch geometry (global size, group
  // count) — co-executed grid-stride kernels depend on it.
  const char* src = R"(
__kernel void tag(__global int* out) {
  size_t i = get_global_id(0);
  out[i] = (int)(get_global_size(0) * 1000 + get_group_id(0));
}
)";
  clsim::Context context(tesla());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 32 * sizeof(std::int32_t));
  std::vector<std::int32_t> init(32, -1);
  queue.enqueue_write_buffer(buffer, init.data(), 32 * sizeof(std::int32_t));
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "tag");
  kernel.set_arg(0, buffer);
  clsim::LaunchSlice slice;
  slice.dim = 0;
  slice.group_begin = 2;
  slice.group_count = 3;
  queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(32),
                               clsim::NDRange(4), {}, slice);
  std::vector<std::int32_t> out(32);
  queue.enqueue_read_buffer(buffer, out.data(), 32 * sizeof(std::int32_t));
  queue.finish();
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t group = i / 4;
    if (group >= 2 && group < 5) {
      EXPECT_EQ(out[i], static_cast<std::int32_t>(32 * 1000 + group)) << i;
    } else {
      EXPECT_EQ(out[i], -1) << i;  // outside the slice: untouched
    }
  }
}

TEST(Executor, LaunchSliceOutOfRangeRejected) {
  const char* src = "__kernel void k(__global int* o) { o[0] = 1; }";
  clsim::Context context(tesla());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 64);
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "k");
  kernel.set_arg(0, buffer);

  clsim::LaunchSlice overrun{0, 6, 4};  // 8 groups: 6+4 > 8
  EXPECT_THROW(queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(32),
                                            clsim::NDRange(4), {}, overrun),
               clsim::RuntimeError);
  clsim::LaunchSlice bad_dim{1, 0, 1};  // 1-D launch has no dimension 1
  EXPECT_THROW(queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(32),
                                            clsim::NDRange(4), {}, bad_dim),
               clsim::RuntimeError);
  clsim::LaunchSlice empty{0, 0, 0};  // zero groups
  EXPECT_THROW(queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(32),
                                            clsim::NDRange(4), {}, empty),
               clsim::RuntimeError);
  queue.finish();
}

TEST(Executor, ThreeDimensionalRange) {
  const char* src = R"(
__kernel void k(__global int* out) {
  size_t x = get_global_id(0);
  size_t y = get_global_id(1);
  size_t z = get_global_id(2);
  size_t nx = get_global_size(0);
  size_t ny = get_global_size(1);
  out[(z * ny + y) * nx + x] = (int)(x + 10 * y + 100 * z);
}
)";
  clsim::Context context(tesla());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 4 * 3 * 2 * sizeof(std::int32_t));
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "k");
  kernel.set_arg(0, buffer);
  queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(4, 3, 2),
                               clsim::NDRange(2, 1, 1));
  std::vector<std::int32_t> out(24);
  queue.enqueue_read_buffer(buffer, out.data(), out.size() * 4);
  queue.finish();  // the queue is asynchronous; block before reading `out`
  for (std::size_t z = 0; z < 2; ++z) {
    for (std::size_t y = 0; y < 3; ++y) {
      for (std::size_t x = 0; x < 4; ++x) {
        EXPECT_EQ(out[(z * 3 + y) * 4 + x],
                  static_cast<std::int32_t>(x + 10 * y + 100 * z));
      }
    }
  }
}

TEST(Executor, MismatchedLocalSizeRejected) {
  const char* src = "__kernel void k(__global int* o) { o[0] = 1; }";
  clsim::Context context(tesla());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 64);
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "k");
  kernel.set_arg(0, buffer);
  EXPECT_THROW(queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(10),
                                            clsim::NDRange(3)),
               hplrepro::InvalidArgument);
}

TEST(Executor, DivergentBarrierDetected) {
  const char* src = R"(
__kernel void k(__global int* o) {
  if (get_local_id(0) == 0) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  o[get_global_id(0)] = 1;
}
)";
  clsim::Context context(tesla());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 8 * sizeof(std::int32_t));
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "k");
  kernel.set_arg(0, buffer);
  // Execution errors surface when the host synchronizes, not at enqueue.
  EXPECT_THROW(
      {
        queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(8),
                                     clsim::NDRange(4));
        queue.finish();
      },
      hplrepro::clc::TrapError);
}

TEST(Executor, DoubleKernelRejectedOnQuadro) {
  const char* src = "__kernel void k(__global double* o) { o[0] = 1.0; }";
  auto quadro = *clsim::Platform::get().device_by_name("Quadro");
  clsim::Context context(quadro);
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 64);
  clsim::Program program(context, src);
  program.build();  // compiles fine; execution is what the device refuses
  clsim::Kernel kernel(program, "k");
  kernel.set_arg(0, buffer);
  EXPECT_THROW(queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(1)),
               hplrepro::InvalidArgument);
}

TEST(Executor, LocalMemoryOverCapacityRejected) {
  // 64 KB of __local exceeds the Tesla's 48 KB per group.
  const char* src = R"(
__kernel void k(__global float* o) {
  __local float big[16384];
  big[get_local_id(0)] = 1.0f;
  o[0] = big[0];
}
)";
  clsim::Context context(tesla());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 64);
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "k");
  kernel.set_arg(0, buffer);
  EXPECT_THROW(queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(1)),
               hplrepro::InvalidArgument);
}

TEST(Executor, UnsetArgumentRejected) {
  const char* src =
      "__kernel void k(__global int* a, __global int* b) { a[0] = b[0]; }";
  clsim::Context context(tesla());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 64);
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "k");
  kernel.set_arg(0, buffer);  // b never set
  EXPECT_THROW(queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(1)),
               clsim::RuntimeError);
}

TEST(Executor, StatsCountItemsAndGroups) {
  const char* src = "__kernel void k(__global int* o) { o[get_global_id(0)] = 1; }";
  clsim::Context context(tesla());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 1024 * 4);
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "k");
  kernel.set_arg(0, buffer);
  const auto event = queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(1024),
                                                  clsim::NDRange(64));
  EXPECT_EQ(event.stats().items, 1024u);
  EXPECT_EQ(event.stats().groups, 16u);
  EXPECT_EQ(event.stats().global_store_bytes, 1024u * 4);
  EXPECT_GT(event.stats().global_transactions, 0u);
}

TEST(Executor, BarrierGlobalVisibility) {
  // Work-items write global memory, barrier, then read a neighbour's slot
  // (within the same group): the writes must be visible.
  const char* src = R"(
__kernel void k(__global int* data) {
  size_t gid = get_global_id(0);
  size_t lid = get_local_id(0);
  size_t lsz = get_local_size(0);
  size_t n = get_global_size(0);
  data[gid] = (int)gid * 2;
  barrier(CLK_GLOBAL_MEM_FENCE);
  size_t neighbor = gid - lid + ((lid + 1) % lsz);
  data[n + gid] = data[neighbor] + 1;  /* disjoint output: no write race */
}
)";
  clsim::Context context(tesla());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, 16 * 4);
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "k");
  kernel.set_arg(0, buffer);
  queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(8), clsim::NDRange(4));
  std::vector<std::int32_t> out(16);
  queue.enqueue_read_buffer(buffer, out.data(), 64);
  queue.finish();  // the queue is asynchronous; block before reading `out`
  for (std::size_t gid = 0; gid < 8; ++gid) {
    const std::size_t lid = gid % 4;
    const std::size_t neighbor = gid - lid + ((lid + 1) % 4);
    EXPECT_EQ(out[8 + gid], static_cast<std::int32_t>(neighbor * 2 + 1))
        << gid;
  }
}

}  // namespace
