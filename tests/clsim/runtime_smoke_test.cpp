// End-to-end smoke tests: OpenCL C source -> clc compile -> clsim launch.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "clsim/runtime.hpp"

namespace clsim = hplrepro::clsim;

namespace {

const char* kSaxpySource = R"(
__kernel void saxpy(__global float* y, __global const float* x, float a) {
  size_t i = get_global_id(0);
  y[i] = a * x[i] + y[i];
}
)";

TEST(RuntimeSmoke, SaxpyOnDefaultDevice) {
  auto& platform = clsim::Platform::get();
  clsim::Device device = platform.default_accelerator();
  EXPECT_NE(device.type(), clsim::DeviceType::Cpu);

  clsim::Context context(device);
  clsim::CommandQueue queue(context);

  constexpr std::size_t n = 1024;
  std::vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i);
    y[i] = 1.0f;
  }

  clsim::Buffer bx(context, n * sizeof(float));
  clsim::Buffer by(context, n * sizeof(float));
  queue.enqueue_write_buffer(bx, x.data(), n * sizeof(float));
  queue.enqueue_write_buffer(by, y.data(), n * sizeof(float));

  clsim::Program program(context, kSaxpySource);
  program.build();
  clsim::Kernel kernel(program, "saxpy");
  kernel.set_arg(0, by);
  kernel.set_arg(1, bx);
  kernel.set_arg(2, 2.0f);

  clsim::Event event =
      queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n));
  queue.enqueue_read_buffer(by, y.data(), n * sizeof(float));
  queue.finish();  // the queue is asynchronous; block before reading `y`

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(y[i], 2.0f * static_cast<float>(i) + 1.0f) << "i=" << i;
  }
  EXPECT_EQ(event.stats().items, n);
  EXPECT_GT(event.sim_seconds(), 0.0);
}

const char* kDotSource = R"(
__kernel void dotp(__global const float* v1, __global const float* v2,
                   __global float* psums, __local float* unused) {
  int dummy = 0;
}
)";

TEST(RuntimeSmoke, LocalReductionWithBarrier) {
  const char* source = R"(
__kernel void dotp(__global const float* v1, __global const float* v2,
                   __global float* psums) {
  __local float shared[32];
  size_t lid = get_local_id(0);
  size_t gid = get_global_id(0);
  shared[lid] = v1[gid] * v2[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  if (lid == 0) {
    float sum = 0.0f;
    for (int i = 0; i < 32; i++) {
      sum += shared[i];
    }
    psums[get_group_id(0)] = sum;
  }
}
)";
  auto& platform = clsim::Platform::get();
  clsim::Context context(platform.default_accelerator());
  clsim::CommandQueue queue(context);

  constexpr std::size_t n = 256, m = 32, groups = n / m;
  std::vector<float> v1(n, 2.0f), v2(n, 3.0f), psums(groups, 0.0f);

  clsim::Buffer b1(context, n * sizeof(float));
  clsim::Buffer b2(context, n * sizeof(float));
  clsim::Buffer bp(context, groups * sizeof(float));
  queue.enqueue_write_buffer(b1, v1.data(), n * sizeof(float));
  queue.enqueue_write_buffer(b2, v2.data(), n * sizeof(float));

  clsim::Program program(context, source);
  program.build();
  clsim::Kernel kernel(program, "dotp");
  kernel.set_arg(0, b1);
  kernel.set_arg(1, b2);
  kernel.set_arg(2, bp);

  queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n), clsim::NDRange(m));
  queue.enqueue_read_buffer(bp, psums.data(), groups * sizeof(float));
  queue.finish();  // the queue is asynchronous; block before reading `psums`

  for (std::size_t g = 0; g < groups; ++g) {
    ASSERT_FLOAT_EQ(psums[g], 6.0f * m) << "group " << g;
  }
}

}  // namespace
