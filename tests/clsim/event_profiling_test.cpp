// Event profiling semantics (the analogue of CL_QUEUE_PROFILING_ENABLE):
// every command carries queued/submitted/started/ended marks on the
// queue's simulated timeline. Invariants under test:
//   * queued <= submitted <= started <= ended (monotone within a command);
//   * ended - started == sim_seconds == TimingBreakdown total (kernels)
//     or simulate_transfer_time (transfers);
//   * an in-order queue never starts a command before the previous one
//     ended, and the queue clock accumulates every command.

#include <gtest/gtest.h>

#include <vector>

#include "clsim/runtime.hpp"
#include "clsim/timing.hpp"

namespace clsim = hplrepro::clsim;

namespace {

const char* kScaleSource = R"(
__kernel void scale(__global float* data, float a) {
  size_t i = get_global_id(0);
  data[i] = a * data[i];
}
)";

void expect_monotone(const clsim::Event& e) {
  EXPECT_LE(e.queued(), e.submitted());
  EXPECT_LE(e.submitted(), e.started());
  EXPECT_LE(e.started(), e.ended());
}

TEST(EventProfiling, TransferTimestampsMatchTransferModel) {
  clsim::Device device = clsim::Platform::get().default_accelerator();
  clsim::Context context(device);
  clsim::CommandQueue queue(context);

  constexpr std::size_t n = 4096;
  std::vector<float> host(n, 1.0f);
  clsim::Buffer buffer(context, n * sizeof(float));

  const clsim::Event write =
      queue.enqueue_write_buffer(buffer, host.data(), n * sizeof(float));
  expect_monotone(write);
  const double expected =
      clsim::simulate_transfer_time(n * sizeof(float), device.spec());
  EXPECT_DOUBLE_EQ(write.ended() - write.started(), expected);
  EXPECT_DOUBLE_EQ(write.sim_seconds(), expected);

  const clsim::Event read =
      queue.enqueue_read_buffer(buffer, host.data(), n * sizeof(float));
  expect_monotone(read);
  EXPECT_DOUBLE_EQ(read.ended() - read.started(), expected);
  // In-order queue: the read cannot start before the write ended.
  EXPECT_GE(read.queued(), write.ended());
}

TEST(EventProfiling, KernelEndMinusStartEqualsTimingTotal) {
  clsim::Device device = clsim::Platform::get().default_accelerator();
  clsim::Context context(device);
  clsim::CommandQueue queue(context);

  constexpr std::size_t n = 1024;
  std::vector<float> host(n, 3.0f);
  clsim::Buffer buffer(context, n * sizeof(float));
  queue.enqueue_write_buffer(buffer, host.data(), n * sizeof(float));

  clsim::Program program(context, kScaleSource);
  program.build();
  clsim::Kernel kernel(program, "scale");
  kernel.set_arg(0, buffer);
  kernel.set_arg(1, 2.0f);

  const clsim::Event event =
      queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n));
  expect_monotone(event);
  EXPECT_DOUBLE_EQ(event.ended() - event.started(), event.timing().total_s);
  EXPECT_DOUBLE_EQ(event.sim_seconds(), event.timing().total_s);
  EXPECT_GT(event.sim_seconds(), 0.0);
}

TEST(EventProfiling, CommandsTileTheQueueTimeline) {
  clsim::Device device = clsim::Platform::get().default_accelerator();
  clsim::Context context(device);
  clsim::CommandQueue queue(context);

  constexpr std::size_t n = 512;
  std::vector<float> host(n, 1.0f);
  clsim::Buffer buffer(context, n * sizeof(float));

  clsim::Program program(context, kScaleSource);
  program.build();
  clsim::Kernel kernel(program, "scale");
  kernel.set_arg(0, buffer);
  kernel.set_arg(1, 2.0f);

  std::vector<clsim::Event> events;
  events.push_back(
      queue.enqueue_write_buffer(buffer, host.data(), n * sizeof(float)));
  events.push_back(queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n)));
  events.push_back(queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n)));
  events.push_back(
      queue.enqueue_read_buffer(buffer, host.data(), n * sizeof(float)));

  // Back-to-back commands on an in-order queue: each starts exactly when
  // its predecessor ended, and the final end is the queue's total clock.
  EXPECT_DOUBLE_EQ(events.front().queued(), 0.0);
  for (std::size_t i = 1; i < events.size(); ++i) {
    expect_monotone(events[i]);
    EXPECT_DOUBLE_EQ(events[i].started(), events[i - 1].ended());
  }
  EXPECT_DOUBLE_EQ(events.back().ended(), queue.simulated_seconds());
}

}  // namespace
