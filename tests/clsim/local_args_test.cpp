// Dynamically sized __local kernel arguments — OpenCL's
// clSetKernelArg(kernel, index, bytes, NULL) — through both the C++ and
// the C API layers.

#include <gtest/gtest.h>

#include <vector>

#include "clsim/cl_api.hpp"
#include "clsim/runtime.hpp"

namespace clsim = hplrepro::clsim;

namespace {

// SHOC-style reduction whose scratchpad size is an argument, not a
// compile-time constant.
const char* kDynLocalSource = R"CLC(
__kernel void group_sum(__global const float* in, __global float* out,
                        __local float* scratch) {
  size_t lid = get_local_id(0);
  size_t lsz = get_local_size(0);
  scratch[lid] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (uint s = (uint)lsz >> 1; s > 0u; s >>= 1) {
    if (lid < s) {
      scratch[lid] += scratch[lid + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (lid == 0) {
    out[get_group_id(0)] = scratch[0];
  }
}
)CLC";

TEST(DynamicLocalArgs, GroupReductionThroughCxxApi) {
  auto device = *clsim::Platform::get().device_by_name("Tesla");
  clsim::Context context(device);
  clsim::CommandQueue queue(context);

  constexpr std::size_t n = 256, local = 32, groups = n / local;
  std::vector<float> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = 1.0f + float(i % 4);

  clsim::Buffer in_buf(context, n * 4), out_buf(context, groups * 4);
  queue.enqueue_write_buffer(in_buf, in.data(), n * 4);

  clsim::Program program(context, kDynLocalSource);
  program.build();
  clsim::Kernel kernel(program, "group_sum");
  kernel.set_arg(0, in_buf);
  kernel.set_arg(1, out_buf);
  kernel.set_arg_local(2, local * sizeof(float));

  queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n),
                               clsim::NDRange(local));
  std::vector<float> out(groups);
  queue.enqueue_read_buffer(out_buf, out.data(), groups * 4);
  queue.finish();  // the queue is asynchronous; block before reading `out`

  for (std::size_t g = 0; g < groups; ++g) {
    float expected = 0;
    for (std::size_t i = g * local; i < (g + 1) * local; ++i) {
      expected += in[i];
    }
    ASSERT_EQ(out[g], expected) << g;
  }
}

TEST(DynamicLocalArgs, ThroughTheCApiWithNullValue) {
  cl_int err;
  cl_platform_id platform;
  clGetPlatformIDs(1, &platform, nullptr);
  cl_device_id device;
  clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);

  constexpr std::size_t n = 64, local = 16, groups = n / local;
  std::vector<float> in(n, 2.0f), out(groups, 0.0f);
  cl_mem in_buf = clCreateBuffer(context, CL_MEM_READ_ONLY | CL_MEM_COPY_HOST_PTR,
                                 n * 4, in.data(), &err);
  cl_mem out_buf = clCreateBuffer(context, CL_MEM_WRITE_ONLY, groups * 4,
                                  nullptr, &err);

  cl_program program =
      clCreateProgramWithSource(context, 1, &kDynLocalSource, nullptr, &err);
  ASSERT_EQ(clBuildProgram(program, 1, &device, nullptr, nullptr, nullptr),
            CL_SUCCESS);
  cl_kernel kernel = clCreateKernel(program, "group_sum", &err);
  ASSERT_EQ(clSetKernelArg(kernel, 0, sizeof(cl_mem), &in_buf), CL_SUCCESS);
  ASSERT_EQ(clSetKernelArg(kernel, 1, sizeof(cl_mem), &out_buf), CL_SUCCESS);
  // The OpenCL idiom under test: NULL value, nonzero size.
  ASSERT_EQ(clSetKernelArg(kernel, 2, local * sizeof(float), nullptr),
            CL_SUCCESS);

  const std::size_t global = n, wg = local;
  ASSERT_EQ(clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, &wg,
                                   0, nullptr, nullptr),
            CL_SUCCESS);
  ASSERT_EQ(clEnqueueReadBuffer(queue, out_buf, CL_TRUE, 0, groups * 4,
                                out.data(), 0, nullptr, nullptr),
            CL_SUCCESS);
  for (const float v : out) EXPECT_EQ(v, 2.0f * local);

  clReleaseKernel(kernel);
  clReleaseProgram(program);
  clReleaseMemObject(in_buf);
  clReleaseMemObject(out_buf);
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
}

TEST(DynamicLocalArgs, CoexistsWithStaticLocalArrays) {
  // A kernel with both a static __local array and a dynamic __local arg:
  // the allocations must not overlap.
  const char* src = R"CLC(
__kernel void both(__global float* out, __local float* dyn) {
  __local float fixed[8];
  size_t lid = get_local_id(0);
  fixed[lid] = 10.0f + (float)lid;
  dyn[lid] = 100.0f + (float)lid;
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = fixed[lid] + dyn[lid];
}
)CLC";
  auto device = *clsim::Platform::get().device_by_name("Tesla");
  clsim::Context context(device);
  clsim::CommandQueue queue(context);
  clsim::Buffer out_buf(context, 8 * 4);
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "both");
  kernel.set_arg(0, out_buf);
  kernel.set_arg_local(1, 8 * sizeof(float));
  queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(8), clsim::NDRange(8));
  std::vector<float> out(8);
  queue.enqueue_read_buffer(out_buf, out.data(), 32);
  queue.finish();  // the queue is asynchronous; block before reading `out`
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(out[i], 110.0f + 2.0f * i) << i;
  }
}

TEST(DynamicLocalArgs, ErrorsAreDiagnosed) {
  const char* src = "__kernel void k(__global float* o) { o[0] = 1.0f; }";
  auto device = *clsim::Platform::get().device_by_name("Tesla");
  clsim::Context context(device);
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "k");
  // Parameter 0 is a __global pointer, not __local.
  EXPECT_THROW(kernel.set_arg_local(0, 64), clsim::RuntimeError);
  EXPECT_THROW(kernel.set_arg_local(5, 64), clsim::RuntimeError);

  // Oversized dynamic allocation must be rejected at launch (48 KB limit).
  const char* src2 =
      "__kernel void k(__global float* o, __local float* s) {"
      " s[0] = 1.0f; o[0] = s[0]; }";
  clsim::Program program2(context, src2);
  program2.build();
  clsim::Kernel kernel2(program2, "k");
  clsim::Buffer out(context, 64);
  clsim::CommandQueue queue(context);
  kernel2.set_arg(0, out);
  kernel2.set_arg_local(1, 1 << 20);
  EXPECT_THROW(queue.enqueue_ndrange_kernel(kernel2, clsim::NDRange(1)),
               hplrepro::InvalidArgument);
}

}  // namespace
