// Timing model unit tests: the roofline behaviour that drives every
// paper figure — compute scaling with cores, bandwidth bounds, double and
// transcendental penalties, transfer costs.

#include <gtest/gtest.h>

#include "clsim/device.hpp"
#include "clsim/timing.hpp"

using namespace hplrepro::clsim;
using hplrepro::clc::ExecStats;

namespace {

ExecStats compute_bound_stats() {
  ExecStats s;
  s.int_ops = 1'000'000'000;
  return s;
}

TEST(Timing, ComputeScalesWithCores) {
  DeviceSpec one = tesla_c2050();
  one.compute_units = 1;
  DeviceSpec many = tesla_c2050();
  many.compute_units = 448;

  const auto stats = compute_bound_stats();
  const double t1 = simulate_kernel_time(stats, one).compute_s;
  const double t448 = simulate_kernel_time(stats, many).compute_s;
  EXPECT_NEAR(t1 / t448, 448.0, 1e-6);
}

TEST(Timing, MemoryBoundKernelIsBandwidthLimited) {
  ExecStats s;
  s.global_load_bytes = 1'000'000'000;
  s.global_transactions = 1'000'000'000 / 32;

  const DeviceSpec tesla = tesla_c2050();  // 144 GB/s
  const auto t = simulate_kernel_time(s, tesla);
  EXPECT_NEAR(t.global_mem_s, 1e9 / 144e9, 1e-12);
  EXPECT_GT(t.global_mem_s, t.compute_s);
}

TEST(Timing, UncoalescedTrafficCostsMore) {
  ExecStats coalesced;
  coalesced.global_load_bytes = 1 << 20;
  coalesced.global_transactions = (1 << 20) / 32;

  ExecStats scattered = coalesced;
  scattered.global_transactions = (1 << 20) / 4;  // one 32B segment per 4B

  const DeviceSpec tesla = tesla_c2050();
  EXPECT_GT(simulate_kernel_time(scattered, tesla).global_mem_s,
            simulate_kernel_time(coalesced, tesla).global_mem_s * 7);
}

TEST(Timing, CpuIgnoresCoalescingUsesRawBytes) {
  ExecStats s;
  s.global_load_bytes = 800'000'000;
  s.global_transactions = 1;  // would be absurdly cheap if it were used

  const DeviceSpec cpu = xeon_host();  // 8 GB/s, models_coalescing = false
  EXPECT_NEAR(simulate_kernel_time(s, cpu).global_mem_s, 0.1, 1e-9);
}

TEST(Timing, DoublePrecisionPenaltyOnGpu) {
  ExecStats floats;
  floats.float_ops = 1'000'000;
  ExecStats doubles;
  doubles.double_ops = 1'000'000;

  const DeviceSpec tesla = tesla_c2050();  // double_rate = 0.5
  EXPECT_NEAR(simulate_kernel_time(doubles, tesla).compute_s /
                  simulate_kernel_time(floats, tesla).compute_s,
              2.0, 1e-9);
}

TEST(Timing, TranscendentalsAreExpensive) {
  ExecStats adds;
  adds.float_ops = 1'000'000;
  ExecStats specials;
  specials.special_ops = 1'000'000;

  const DeviceSpec cpu = xeon_host();
  EXPECT_NEAR(simulate_kernel_time(specials, cpu).compute_s /
                  simulate_kernel_time(adds, cpu).compute_s,
              cpu.special_op_cycles, 1e-6);
}

TEST(Timing, LaunchOverheadFloorsSmallKernels) {
  ExecStats tiny;
  tiny.int_ops = 10;
  const DeviceSpec tesla = tesla_c2050();
  const auto t = simulate_kernel_time(tiny, tesla);
  EXPECT_GE(t.total_s, tesla.launch_overhead_us * 1e-6);
}

TEST(Timing, BarrierCostScalesWithCount) {
  ExecStats a;
  a.barriers_executed = 1'000'000;
  ExecStats b;
  b.barriers_executed = 2'000'000;
  const DeviceSpec tesla = tesla_c2050();
  EXPECT_NEAR(simulate_kernel_time(b, tesla).barrier_s /
                  simulate_kernel_time(a, tesla).barrier_s,
              2.0, 1e-9);
}

TEST(Timing, TransferHasLatencyAndBandwidthTerms) {
  const DeviceSpec tesla = tesla_c2050();
  const double small = simulate_transfer_time(1, tesla);
  const double large = simulate_transfer_time(1 << 30, tesla);
  EXPECT_NEAR(small, tesla.transfer_latency_us * 1e-6, 1e-9);
  EXPECT_NEAR(large,
              tesla.transfer_latency_us * 1e-6 +
                  static_cast<double>(1 << 30) /
                      (tesla.transfer_bandwidth_gbs * 1e9),
              1e-9);
}

TEST(Timing, EpStyleRatioLandsNearPaperBand) {
  // A synthetic EP-like op mix: mostly double arithmetic plus some
  // transcendentals. The Tesla/Xeon ratio must land in the paper's
  // couple-hundred-x band (Fig. 6/7 report 257x for class C).
  ExecStats s;
  s.control_ops = 11'000'000;
  s.int_ops = 400'000;
  s.double_ops = 3'500'000;
  s.special_ops = 100'000;

  const double gpu = simulate_kernel_time(s, tesla_c2050()).total_s;
  const double cpu = simulate_kernel_time(s, xeon_host()).total_s;
  const double ratio = cpu / gpu;
  EXPECT_GT(ratio, 100.0);
  EXPECT_LT(ratio, 500.0);
}

TEST(Timing, QuadroRejectsNothingButIsSlower) {
  ExecStats s;
  s.float_ops = 100'000'000;
  const double tesla = simulate_kernel_time(s, tesla_c2050()).total_s;
  const double quadro = simulate_kernel_time(s, quadro_fx380()).total_s;
  // 448*1.15 GHz vs 16*0.7 GHz: ~46x slower.
  EXPECT_GT(quadro / tesla, 20.0);
  EXPECT_FALSE(quadro_fx380().supports_double);
}

}  // namespace
