// The scenario grader graded: the reduced matrix must come back clean
// (every workload correct, every profile reconciled, every run inside its
// envelope, full cross-variant identity), the JSON scorecard must carry
// the schema CI validates, and — the grader's own acceptance test — a
// kernel with a deliberately wrong boundary policy must be caught.

#include <gtest/gtest.h>

#include "clsim/runtime.hpp"
#include "hpl/fusion.hpp"
#include "hpl/runtime.hpp"
#include "scenario/scenario.hpp"

namespace scenario = hplrepro::scenario;
namespace clsim = hplrepro::clsim;

namespace {

TEST(ScenarioGrader, WorkloadRegistryCoversBenchsuiteAndStencils) {
  const std::vector<std::string> names = scenario::workload_names();
  const std::vector<std::string> expected = {
      "ep", "floyd", "transpose", "spmv", "reduction",
      "blur", "sobel", "jacobi"};
  EXPECT_EQ(names, expected);
}

TEST(ScenarioGrader, CellLabelAndBuildOptions) {
  const scenario::Cell cell{"Tesla", false, "threaded", "-O0", "small",
                            true};
  EXPECT_EQ(cell.label(), "Tesla/sync/threaded/-O0/small/fused");
  EXPECT_EQ(cell.build_options(), "-O0 -cl-interp=threaded -cl-fusion=on");

  const scenario::Cell wg_off{"Tesla", true, "threaded-wg-off", "-O2",
                              "small", false};
  EXPECT_EQ(wg_off.label(), "Tesla/async/threaded-wg-off/-O2/small/nofuse");
  EXPECT_EQ(wg_off.build_options(),
            "-O2 -cl-interp=threaded -cl-wg-loops=off -cl-fusion=off");
}

TEST(ScenarioGrader, ReducedMatrixGradesClean) {
  const scenario::Axes axes = scenario::Axes::reduced();
  // 3 devices x 2 sync x 3 interp x 2 opt x 2 fusion
  ASSERT_EQ(axes.cell_count(), 72u);

  const scenario::SweepReport report = scenario::run_sweep(axes);

  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cells.size(), 72u);
  // 72 cells x 8 workloads, minus EP on the 24 Quadro cells (no doubles).
  EXPECT_EQ(report.graded, 552u);
  EXPECT_EQ(report.passed, 552u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.skipped, 24u);
  EXPECT_TRUE(report.identity_failures.empty());

  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.passed()) << cell.cell.label();
    for (const auto& grade : cell.grades) {
      if (grade.skipped) {
        EXPECT_EQ(grade.workload, "ep");
        EXPECT_EQ(cell.cell.device, "Quadro");
        continue;
      }
      EXPECT_TRUE(grade.failures.empty())
          << cell.cell.label() << " " << grade.workload << ": "
          << grade.failures.front();
      EXPECT_NE(grade.output_hash, 0u);
      EXPECT_GE(grade.launches, 1u);
      EXPECT_EQ(grade.cache_misses, 1u);
      EXPECT_EQ(grade.cache_hits + grade.cache_misses, grade.launches);
      EXPECT_GT(grade.kernel_sim_seconds, 0.0);
    }
  }
}

TEST(ScenarioGrader, SweepRestoresRuntimeConfiguration) {
  clsim::set_async_enabled(true);
  HPL::set_kernel_build_options("-O2");
  HPL::set_fusion_enabled(false);  // the cells toggle it; guard restores

  scenario::Axes axes = scenario::Axes::reduced();
  axes.devices = {"Tesla"};  // one device is enough to exercise the guard
  (void)scenario::run_sweep(axes);

  EXPECT_TRUE(clsim::async_enabled());
  EXPECT_EQ(HPL::kernel_build_options(), "-O2");
  EXPECT_FALSE(HPL::fusion_enabled());
  HPL::set_kernel_build_options("");
  HPL::set_fusion_enabled(true);
}

TEST(ScenarioGrader, JsonReportCarriesSchemaAndSummary) {
  scenario::Axes axes = scenario::Axes::reduced();
  axes.devices = {"Tesla"};
  axes.opts = {"-O2"};
  const scenario::SweepReport report = scenario::run_sweep(axes);
  const std::string json = scenario::report_json(report, 1);

  EXPECT_NE(json.find("\"schema\": \"hplrepro-scenario-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cells\": ["), std::string::npos);
  EXPECT_NE(json.find("Tesla/async/stack/-O2/small/fused"),
            std::string::npos);
  EXPECT_NE(json.find("Tesla/async/stack/-O2/small/nofuse"),
            std::string::npos);
  EXPECT_NE(json.find("\"self_test\": {\"sabotage_caught\": true}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  // Omitting the self-test block is the -1 contract.
  EXPECT_EQ(scenario::report_json(report).find("self_test"),
            std::string::npos);
  // Omitting the top-level fusion array is the nullptr contract (the axes
  // block's "fusion" mode list is always present, hence the indent anchor).
  EXPECT_EQ(json.find("\n  \"fusion\": ["), std::string::npos);
}

// The fusion axis: chained pattern programs must save launches and global
// traffic bit-identically, the multi-statement control must be untouched,
// and the chained corpus must clear the 25% launch-reduction acceptance
// bar the CI bench gates on.
TEST(ScenarioGrader, FusionAxisGradesClean) {
  const std::vector<scenario::FusionGrade> grades =
      scenario::run_fusion_axis();
  ASSERT_GE(grades.size(), 5u);

  std::uint64_t chained_unfused = 0, chained_fused = 0;
  std::size_t controls = 0;
  for (const auto& g : grades) {
    EXPECT_TRUE(g.passed())
        << g.program << ": " << g.failures.front();
    EXPECT_TRUE(g.bit_identical) << g.program;
    if (g.chained) {
      EXPECT_GE(g.launches_saved, 1u) << g.program;
      EXPECT_LT(g.fused_bytes, g.unfused_bytes) << g.program;
      chained_unfused += g.unfused_launches;
      chained_fused += g.fused_launches;
    } else {
      ++controls;
      EXPECT_EQ(g.launches_saved, 0u) << g.program;
      EXPECT_EQ(g.fused_bytes, g.unfused_bytes) << g.program;
    }
  }
  EXPECT_GE(controls, 1u);
  ASSERT_GT(chained_unfused, 0u);
  const double reduction =
      1.0 - static_cast<double>(chained_fused) /
                static_cast<double>(chained_unfused);
  EXPECT_GE(reduction, 0.25);

  // The grades embed as a top-level "fusion" array folded into summary.ok.
  scenario::Axes axes = scenario::Axes::reduced();
  axes.devices = {"Tesla"};
  axes.opts = {"-O2"};
  axes.interps = {"stack"};
  const scenario::SweepReport report = scenario::run_sweep(axes);
  const std::string json =
      scenario::report_json(report, -1, nullptr, &grades);
  EXPECT_NE(json.find("\n  \"fusion\": ["), std::string::npos);
  EXPECT_NE(json.find("\"program\": \"map_chain\""), std::string::npos);
  EXPECT_NE(json.find("\"fusion_failed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

// The acceptance criterion for the grader itself: a deliberately broken
// kernel (blur graded against a reference with a different edge policy)
// must be flagged — and only by the correctness rule.
TEST(ScenarioGrader, SabotagedBoundaryPolicyIsCaught) {
  EXPECT_TRUE(scenario::grader_catches_sabotage());
}

}  // namespace
