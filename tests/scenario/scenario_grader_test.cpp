// The scenario grader graded: the reduced matrix must come back clean
// (every workload correct, every profile reconciled, every run inside its
// envelope, full cross-variant identity), the JSON scorecard must carry
// the schema CI validates, and — the grader's own acceptance test — a
// kernel with a deliberately wrong boundary policy must be caught.

#include <gtest/gtest.h>

#include "clsim/runtime.hpp"
#include "hpl/runtime.hpp"
#include "scenario/scenario.hpp"

namespace scenario = hplrepro::scenario;
namespace clsim = hplrepro::clsim;

namespace {

TEST(ScenarioGrader, WorkloadRegistryCoversBenchsuiteAndStencils) {
  const std::vector<std::string> names = scenario::workload_names();
  const std::vector<std::string> expected = {
      "ep", "floyd", "transpose", "spmv", "reduction",
      "blur", "sobel", "jacobi"};
  EXPECT_EQ(names, expected);
}

TEST(ScenarioGrader, CellLabelAndBuildOptions) {
  const scenario::Cell cell{"Tesla", false, "threaded", "-O0", "small"};
  EXPECT_EQ(cell.label(), "Tesla/sync/threaded/-O0/small");
  EXPECT_EQ(cell.build_options(), "-O0 -cl-interp=threaded");

  const scenario::Cell wg_off{"Tesla", true, "threaded-wg-off", "-O2",
                              "small"};
  EXPECT_EQ(wg_off.label(), "Tesla/async/threaded-wg-off/-O2/small");
  EXPECT_EQ(wg_off.build_options(),
            "-O2 -cl-interp=threaded -cl-wg-loops=off");
}

TEST(ScenarioGrader, ReducedMatrixGradesClean) {
  const scenario::Axes axes = scenario::Axes::reduced();
  // 3 devices x 2 sync x 3 interp x 2 opt
  ASSERT_EQ(axes.cell_count(), 36u);

  const scenario::SweepReport report = scenario::run_sweep(axes);

  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cells.size(), 36u);
  // 36 cells x 8 workloads, minus EP on the 12 Quadro cells (no doubles).
  EXPECT_EQ(report.graded, 276u);
  EXPECT_EQ(report.passed, 276u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.skipped, 12u);
  EXPECT_TRUE(report.identity_failures.empty());

  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.passed()) << cell.cell.label();
    for (const auto& grade : cell.grades) {
      if (grade.skipped) {
        EXPECT_EQ(grade.workload, "ep");
        EXPECT_EQ(cell.cell.device, "Quadro");
        continue;
      }
      EXPECT_TRUE(grade.failures.empty())
          << cell.cell.label() << " " << grade.workload << ": "
          << grade.failures.front();
      EXPECT_NE(grade.output_hash, 0u);
      EXPECT_GE(grade.launches, 1u);
      EXPECT_EQ(grade.cache_misses, 1u);
      EXPECT_EQ(grade.cache_hits + grade.cache_misses, grade.launches);
      EXPECT_GT(grade.kernel_sim_seconds, 0.0);
    }
  }
}

TEST(ScenarioGrader, SweepRestoresRuntimeConfiguration) {
  clsim::set_async_enabled(true);
  HPL::set_kernel_build_options("-O2");

  scenario::Axes axes = scenario::Axes::reduced();
  axes.devices = {"Tesla"};  // one device is enough to exercise the guard
  (void)scenario::run_sweep(axes);

  EXPECT_TRUE(clsim::async_enabled());
  EXPECT_EQ(HPL::kernel_build_options(), "-O2");
  HPL::set_kernel_build_options("");
}

TEST(ScenarioGrader, JsonReportCarriesSchemaAndSummary) {
  scenario::Axes axes = scenario::Axes::reduced();
  axes.devices = {"Tesla"};
  axes.opts = {"-O2"};
  const scenario::SweepReport report = scenario::run_sweep(axes);
  const std::string json = scenario::report_json(report, 1);

  EXPECT_NE(json.find("\"schema\": \"hplrepro-scenario-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cells\": ["), std::string::npos);
  EXPECT_NE(json.find("Tesla/async/stack/-O2/small"), std::string::npos);
  EXPECT_NE(json.find("\"self_test\": {\"sabotage_caught\": true}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  // Omitting the self-test block is the -1 contract.
  EXPECT_EQ(scenario::report_json(report).find("self_test"),
            std::string::npos);
}

// The acceptance criterion for the grader itself: a deliberately broken
// kernel (blur graded against a reference with a different edge policy)
// must be flagged — and only by the correctness rule.
TEST(ScenarioGrader, SabotagedBoundaryPolicyIsCaught) {
  EXPECT_TRUE(scenario::grader_catches_sabotage());
}

}  // namespace
