// The Sloccount-equivalent counter behind Table I, plus sanity checks on
// the registered benchmark sources.

#include <gtest/gtest.h>

#include "benchsuite/sloc.hpp"
#include "support/error.hpp"

using namespace hplrepro::benchsuite;

namespace {

TEST(Sloc, CountsPlainCode) {
  EXPECT_EQ(count_sloc_text("int a;\nint b;\n"), 2u);
  EXPECT_EQ(count_sloc_text(""), 0u);
  EXPECT_EQ(count_sloc_text("\n\n\n"), 0u);
  EXPECT_EQ(count_sloc_text("x"), 1u);  // no trailing newline
}

TEST(Sloc, IgnoresBlankAndWhitespaceLines) {
  EXPECT_EQ(count_sloc_text("a;\n\n   \n\t\nb;\n"), 2u);
}

TEST(Sloc, IgnoresLineComments) {
  EXPECT_EQ(count_sloc_text("// just a comment\nint a; // trailing\n"), 1u);
}

TEST(Sloc, IgnoresBlockComments) {
  EXPECT_EQ(count_sloc_text("/* one\n two\n three */\nint a;\n"), 1u);
  EXPECT_EQ(count_sloc_text("int a; /* tail */\n/* lead */ int b;\n"), 2u);
}

TEST(Sloc, CommentMarkersInsideStringsDoNotCount) {
  EXPECT_EQ(count_sloc_text("const char* s = \"/* not a comment */\";\n"),
            1u);
  EXPECT_EQ(count_sloc_text("const char* s = \"// neither\";\nint a;\n"), 2u);
}

TEST(Sloc, EscapedQuotesInStrings) {
  EXPECT_EQ(count_sloc_text("const char* s = \"a\\\"b // c\";\n"), 1u);
}

TEST(Sloc, CharLiterals) {
  EXPECT_EQ(count_sloc_text("char c = '\\''; // x\n"), 1u);
}

TEST(Sloc, Table1SourcesAllExistAndAreNontrivial) {
  for (const auto& entry : table1_sources()) {
    for (const auto& path : entry.opencl) {
      EXPECT_GT(count_sloc_file(repo_path(path)), 40u) << path;
    }
    for (const auto& path : entry.hpl) {
      EXPECT_GT(count_sloc_file(repo_path(path)), 20u) << path;
    }
  }
}

TEST(Sloc, HplVersionsAreShorterForEveryBenchmark) {
  // The paper's headline claim, as an invariant of this repository.
  for (const auto& entry : table1_sources()) {
    std::size_t opencl = 0, hpl = 0;
    for (const auto& path : entry.opencl) {
      opencl += count_sloc_file(repo_path(path));
    }
    for (const auto& path : entry.hpl) {
      hpl += count_sloc_file(repo_path(path));
    }
    EXPECT_LT(hpl, opencl) << entry.benchmark;
    // At least a 40% reduction on every benchmark (paper: 68-91%).
    EXPECT_LT(static_cast<double>(hpl) / static_cast<double>(opencl), 0.6)
        << entry.benchmark;
  }
}

TEST(Sloc, MissingFileThrows) {
  EXPECT_THROW(count_sloc_file("/nonexistent/path.cpp"), hplrepro::Error);
}

}  // namespace
