// Boundary-handling property test for the stencil family: every edge
// policy (zero/clamp/wrap), fuzzed over ragged image sizes — including the
// degenerate 1xN and Nx1 shapes where every pixel is a border pixel and
// wrap indexing must survive w==1 or h==1 — must reproduce the serial
// reference exactly, in both the OpenCL-style and the HPL variant.

#include <gtest/gtest.h>

#include <vector>

#include "benchsuite/stencil.hpp"
#include "support/prng.hpp"

namespace bs = hplrepro::benchsuite;
namespace clsim = hplrepro::clsim;

namespace {

clsim::Device tesla() {
  return *clsim::Platform::get().device_by_name("Tesla");
}
HPL::Device hpl_tesla() { return *HPL::Device::by_name("Tesla"); }

void expect_bitwise(const std::vector<float>& ref,
                    const std::vector<float>& got, const char* variant,
                    const bs::StencilConfig& config) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i], got[i])
        << variant << " " << config.width << "x" << config.height << " "
        << bs::edge_policy_name(config.edge) << " pixel " << i;
  }
}

void check_all_policies(std::size_t width, std::size_t height) {
  for (const auto edge : {bs::EdgePolicy::Zero, bs::EdgePolicy::Clamp,
                          bs::EdgePolicy::Wrap}) {
    bs::StencilConfig config;
    config.width = width;
    config.height = height;
    config.edge = edge;
    config.iterations = 2;

    expect_bitwise(bs::blur_serial(config),
                   bs::blur_opencl(config, tesla()).output, "blur/opencl",
                   config);
    expect_bitwise(bs::blur_serial(config),
                   bs::blur_hpl(config, hpl_tesla()).output, "blur/hpl",
                   config);
    expect_bitwise(bs::sobel_serial(config),
                   bs::sobel_opencl(config, tesla()).output, "sobel/opencl",
                   config);
    expect_bitwise(bs::sobel_serial(config),
                   bs::sobel_hpl(config, hpl_tesla()).output, "sobel/hpl",
                   config);
    expect_bitwise(bs::jacobi_serial(config),
                   bs::jacobi_opencl(config, tesla()).output, "jacobi/opencl",
                   config);
    expect_bitwise(bs::jacobi_serial(config),
                   bs::jacobi_hpl(config, hpl_tesla()).output, "jacobi/hpl",
                   config);
  }
}

TEST(StencilBoundary, DegenerateSingleRowAndColumnImages) {
  check_all_policies(1, 1);
  check_all_policies(1, 17);   // 1xN: wrap must survive w == 1
  check_all_policies(23, 1);   // Nx1: wrap must survive h == 1
  check_all_policies(1, 64);   // taller than one whole tile column
  check_all_policies(64, 1);
}

TEST(StencilBoundary, FuzzedRaggedSizes) {
  // Deterministic fuzz over sizes that do not align with the 8x8 tile, so
  // the guarded border and the halo loads are always exercised.
  hplrepro::SplitMix64 rng(0xB0D54EEDull);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t width = 1 + rng.next_u64() % 39;
    const std::size_t height = 1 + rng.next_u64() % 29;
    check_all_policies(width, height);
  }
}

TEST(StencilBoundary, TileMultipleSizesStayExact) {
  // The aligned case (no ragged border) must agree too — guards and halo
  // logic may not disturb fully-covered tiles.
  check_all_policies(bs::StencilConfig::kTile, bs::StencilConfig::kTile);
  check_all_policies(4 * bs::StencilConfig::kTile,
                     2 * bs::StencilConfig::kTile);
}

}  // namespace
