// Lexer and parser units: token classification, literal values, operator
// disassembly of compiled functions, and structural parsing checks.

#include <gtest/gtest.h>

#include "clc/compile.hpp"
#include "clc/lexer.hpp"
#include "clc/parser.hpp"

using namespace hplrepro::clc;

namespace {

std::vector<Token> lex(const std::string& text) {
  DiagnosticSink diags;
  Lexer lexer(text, diags);
  auto tokens = lexer.lex_all();
  EXPECT_FALSE(diags.has_errors()) << diags.log();
  return tokens;
}

TEST(Lexer, IntegerLiterals) {
  auto tokens = lex("0 42 0x1F 123u 5ul 7l");
  ASSERT_EQ(tokens.size(), 7u);  // 6 + End
  EXPECT_EQ(tokens[0].int_value, 0u);
  EXPECT_EQ(tokens[1].int_value, 42u);
  EXPECT_EQ(tokens[2].int_value, 0x1Fu);
  EXPECT_TRUE(tokens[3].is_unsigned_suffix);
  EXPECT_TRUE(tokens[4].is_unsigned_suffix);
  EXPECT_TRUE(tokens[4].is_long_suffix);
  EXPECT_TRUE(tokens[5].is_long_suffix);
}

TEST(Lexer, FloatLiterals) {
  auto tokens = lex("1.5 2.0f 1e3 2.5e-2 .25");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.5);
  EXPECT_TRUE(tokens[1].is_float_suffix);
  EXPECT_FLOAT_EQ(static_cast<float>(tokens[1].float_value), 2.0f);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 0.25);
}

TEST(Lexer, MultiCharOperators) {
  auto tokens = lex("<< >> <= >= == != && || += -= <<= >>= ++ --");
  const Tok expected[] = {Tok::Shl, Tok::Shr, Tok::LessEq, Tok::GreaterEq,
                          Tok::EqEq, Tok::BangEq, Tok::AmpAmp, Tok::PipePipe,
                          Tok::PlusAssign, Tok::MinusAssign, Tok::ShlAssign,
                          Tok::ShrAssign, Tok::PlusPlus, Tok::MinusMinus};
  ASSERT_EQ(tokens.size(), std::size(expected) + 1);
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(Lexer, CommentsAreSkipped) {
  auto tokens = lex("a // comment with * tokens\nb /* block\nspanning */ c");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
  EXPECT_EQ(tokens[2].line, 3);
}

TEST(Lexer, KeywordsAndAlternateSpellings) {
  auto tokens = lex("__kernel kernel __global global size_t unsigned");
  EXPECT_EQ(tokens[0].kind, Tok::KwKernel);
  EXPECT_EQ(tokens[1].kind, Tok::KwKernel);
  EXPECT_EQ(tokens[2].kind, Tok::KwGlobal);
  EXPECT_EQ(tokens[3].kind, Tok::KwGlobal);
  EXPECT_EQ(tokens[4].kind, Tok::KwSizeT);
  EXPECT_EQ(tokens[5].kind, Tok::KwUInt);
}

TEST(Lexer, LineAndColumnTracking) {
  auto tokens = lex("a\n  b\n    c");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[2].column, 5);
}

// --- Parser/compile structure -----------------------------------------------------

TEST(Parser, KernelMetadataExtracted) {
  auto result = compile(R"(
void helper(int x) { }
__kernel void my_kernel(__global float* a, __constant int* t, float s) {
  a[0] = s;
  helper(t[0]);
}
)");
  const auto* kernel = result.module.find("my_kernel");
  ASSERT_NE(kernel, nullptr);
  EXPECT_TRUE(kernel->is_kernel);
  ASSERT_EQ(kernel->params.size(), 3u);
  EXPECT_TRUE(kernel->params[0].type.pointer);
  EXPECT_EQ(kernel->params[0].type.space, AddressSpace::Global);
  EXPECT_EQ(kernel->params[1].type.space, AddressSpace::Constant);
  EXPECT_FALSE(kernel->params[2].type.pointer);
  EXPECT_EQ(kernel->params[2].type.scalar, Scalar::Float);

  const auto* helper = result.module.find("helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_FALSE(helper->is_kernel);
  EXPECT_EQ(result.module.kernel_names(),
            std::vector<std::string>{"my_kernel"});
}

TEST(Parser, BarrierAndDoubleFlagsPropagate) {
  auto result = compile(R"(
double square(double x) { return x * x; }
void sync_helper_free(void) { }
__kernel void with_barrier(__global float* a) {
  __local float s[4];
  s[get_local_id(0)] = a[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  a[get_global_id(0)] = s[0];
}
__kernel void with_double(__global double* a) {
  a[0] = square(a[0]);
}
)");
  EXPECT_TRUE(result.module.find("with_barrier")->uses_barrier);
  EXPECT_FALSE(result.module.find("with_barrier")->uses_double);
  EXPECT_TRUE(result.module.find("with_double")->uses_double);
  EXPECT_FALSE(result.module.find("with_double")->uses_barrier);
  // Local memory accounted.
  EXPECT_EQ(result.module.find("with_barrier")->local_bytes, 16u);
}

TEST(Parser, DisassemblyIsStable) {
  auto result = compile("__kernel void k(__global int* o) { o[0] = 1 + 2; }");
  const std::string text = disassemble(*result.module.find("k"));
  EXPECT_NE(text.find("kernel k"), std::string::npos);
  EXPECT_NE(text.find("push.i"), std::string::npos);
  EXPECT_NE(text.find("store.i32"), std::string::npos);
  EXPECT_NE(text.find("ret.void"), std::string::npos);
}

TEST(Parser, MultipleDeclaratorsPerStatement) {
  auto result = compile(R"(
__kernel void k(__global int* o) {
  int a = 1, b = 2, c;
  c = a + b;
  o[0] = c;
}
)");
  EXPECT_NE(result.module.find("k"), nullptr);
}

TEST(Parser, ForWithoutInitCondStep) {
  auto result = compile(R"(
__kernel void k(__global int* o) {
  int i = 0;
  for (;;) {
    i++;
    if (i == 3) break;
  }
  o[0] = i;
}
)");
  EXPECT_NE(result.module.find("k"), nullptr);
}

}  // namespace
