// The clc type system: sizes, ranks, promotions and the usual arithmetic
// conversions (the rules behind every typed opcode the codegen picks).

#include <gtest/gtest.h>

#include "clc/types.hpp"

using namespace hplrepro::clc;

namespace {

TEST(Types, ScalarSizes) {
  EXPECT_EQ(scalar_size(Scalar::Bool), 1u);
  EXPECT_EQ(scalar_size(Scalar::Char), 1u);
  EXPECT_EQ(scalar_size(Scalar::UChar), 1u);
  EXPECT_EQ(scalar_size(Scalar::Short), 2u);
  EXPECT_EQ(scalar_size(Scalar::UShort), 2u);
  EXPECT_EQ(scalar_size(Scalar::Int), 4u);
  EXPECT_EQ(scalar_size(Scalar::UInt), 4u);
  EXPECT_EQ(scalar_size(Scalar::Long), 8u);
  EXPECT_EQ(scalar_size(Scalar::ULong), 8u);
  EXPECT_EQ(scalar_size(Scalar::Float), 4u);
  EXPECT_EQ(scalar_size(Scalar::Double), 8u);
  EXPECT_EQ(scalar_size(Scalar::Void), 0u);
}

TEST(Types, Classification) {
  EXPECT_TRUE(is_integer(Scalar::Bool));
  EXPECT_TRUE(is_integer(Scalar::ULong));
  EXPECT_FALSE(is_integer(Scalar::Float));
  EXPECT_TRUE(is_signed_integer(Scalar::Char));
  EXPECT_FALSE(is_signed_integer(Scalar::UChar));
  EXPECT_TRUE(is_unsigned_integer(Scalar::UInt));
  EXPECT_FALSE(is_unsigned_integer(Scalar::Bool));  // bool is neither
  EXPECT_TRUE(is_floating(Scalar::Double));
  EXPECT_FALSE(is_floating(Scalar::Long));
}

TEST(Types, IntegerPromotion) {
  EXPECT_EQ(promote(Scalar::Bool), Scalar::Int);
  EXPECT_EQ(promote(Scalar::Char), Scalar::Int);
  EXPECT_EQ(promote(Scalar::UChar), Scalar::Int);
  EXPECT_EQ(promote(Scalar::Short), Scalar::Int);
  EXPECT_EQ(promote(Scalar::UShort), Scalar::Int);
  EXPECT_EQ(promote(Scalar::Int), Scalar::Int);
  EXPECT_EQ(promote(Scalar::UInt), Scalar::UInt);
  EXPECT_EQ(promote(Scalar::Float), Scalar::Float);
}

TEST(Types, UsualArithmeticConversions) {
  // Floating dominates.
  EXPECT_EQ(arithmetic_result(Scalar::Int, Scalar::Double), Scalar::Double);
  EXPECT_EQ(arithmetic_result(Scalar::Float, Scalar::Double), Scalar::Double);
  EXPECT_EQ(arithmetic_result(Scalar::ULong, Scalar::Float), Scalar::Float);
  // Same signedness: higher rank wins.
  EXPECT_EQ(arithmetic_result(Scalar::Int, Scalar::Long), Scalar::Long);
  EXPECT_EQ(arithmetic_result(Scalar::UInt, Scalar::ULong), Scalar::ULong);
  // Mixed signedness, equal rank: unsigned wins.
  EXPECT_EQ(arithmetic_result(Scalar::Int, Scalar::UInt), Scalar::UInt);
  EXPECT_EQ(arithmetic_result(Scalar::Long, Scalar::ULong), Scalar::ULong);
  // Mixed signedness, signed has higher rank: signed wins (can represent).
  EXPECT_EQ(arithmetic_result(Scalar::UInt, Scalar::Long), Scalar::Long);
  // Narrow operands promote first.
  EXPECT_EQ(arithmetic_result(Scalar::Char, Scalar::UChar), Scalar::Int);
  EXPECT_EQ(arithmetic_result(Scalar::Short, Scalar::Short), Scalar::Int);
}

TEST(Types, TypeToString) {
  EXPECT_EQ(Type::scalar_type(Scalar::Float).to_string(), "float");
  EXPECT_EQ(Type::pointer_to(Scalar::Int, AddressSpace::Global).to_string(),
            "__global int*");
  EXPECT_EQ(Type::pointer_to(Scalar::Double, AddressSpace::Local,
                             /*is_const=*/true)
                .to_string(),
            "__local const double*");
  EXPECT_EQ(
      Type::pointer_to(Scalar::Float, AddressSpace::Constant).to_string(),
      "__constant float*");
}

TEST(Types, Equality) {
  const Type a = Type::pointer_to(Scalar::Float, AddressSpace::Global);
  Type b = a;
  EXPECT_EQ(a, b);
  b.const_qualified = true;
  EXPECT_NE(a, b);
  // Non-pointers ignore space/const in comparison.
  Type s1 = Type::scalar_type(Scalar::Int);
  Type s2 = Type::scalar_type(Scalar::Int);
  s2.space = AddressSpace::Local;
  EXPECT_EQ(s1, s2);
}

TEST(Types, VoidPredicates) {
  EXPECT_TRUE(Type::void_type().is_void());
  EXPECT_FALSE(Type::void_type().is_arithmetic());
  EXPECT_TRUE(Type::scalar_type(Scalar::Int).is_arithmetic());
  EXPECT_FALSE(
      Type::pointer_to(Scalar::Int, AddressSpace::Global).is_arithmetic());
}

}  // namespace
