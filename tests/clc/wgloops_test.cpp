// Unit tests for the work-group compilation analysis (wgloops.cpp): the
// build-time pass that splits a kernel's register code at barriers into
// regions and computes the per-item spill set the work-group VM carries
// across region boundaries. These check the analysis artifacts (WgInfo)
// directly; the execution contract (bit/stats identity against per-item
// activations) lives in optimizer_diff_test.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "clc/compile.hpp"

namespace clc = hplrepro::clc;

namespace {

clc::Module compile_with(const std::string& source,
                         const std::string& options) {
  clc::CompileOptions opt;
  std::string error;
  EXPECT_TRUE(clc::parse_build_options(options, opt, error)) << error;
  return clc::compile(source, opt).module;
}

const clc::WgInfo& kernel_info(const clc::Module& module,
                               const std::string& name) {
  const clc::CompiledFunction* fn = module.find(name);
  EXPECT_NE(fn, nullptr) << name;
  const auto index =
      static_cast<std::size_t>(fn - module.functions.data());
  return module.wg_info[index];
}

const char* kTwoRegionKernel = R"CLC(
__kernel void k(__global uint* out) {
  __local uint tile[64];
  size_t lid = get_local_id(0);
  tile[lid] = (uint)lid * 3u;
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tile[(lid + 1u) % 64u];
}
)CLC";

// Work-group compilation is the default under the threaded interpreter:
// a -O2 build carries a wg form and marks a plain barrier kernel
// eligible, with one region per barrier resume point plus the entry.
TEST(WgLoops, DefaultBuildCarriesEligibleTwoRegionForm) {
  const clc::Module m = compile_with(kTwoRegionKernel, "-O2");
  ASSERT_TRUE(m.has_wg_form());
  const clc::WgInfo& info = kernel_info(m, "k");
  EXPECT_TRUE(info.eligible);
  EXPECT_EQ(info.region_count, 2u);
  EXPECT_FALSE(info.live_regs.empty());  // lid crosses the barrier
}

TEST(WgLoops, BarrierFreeKernelIsOneRegion) {
  const clc::Module m = compile_with(
      "__kernel void k(__global uint* out) { out[get_global_id(0)] = 1u; }",
      "-O2");
  ASSERT_TRUE(m.has_wg_form());
  const clc::WgInfo& info = kernel_info(m, "k");
  EXPECT_TRUE(info.eligible);
  EXPECT_EQ(info.region_count, 1u);
  EXPECT_TRUE(info.live_regs.empty());
}

TEST(WgLoops, RegionCountIsBarriersPlusOne) {
  const clc::Module m = compile_with(R"CLC(
__kernel void k(__global uint* out) {
  __local uint tile[16];
  size_t lid = get_local_id(0);
  tile[lid] = (uint)lid;
  barrier(CLK_LOCAL_MEM_FENCE);
  uint a = tile[15u - lid];
  barrier(CLK_LOCAL_MEM_FENCE);
  tile[lid] = a + 1u;
  barrier(CLK_LOCAL_MEM_FENCE);
  out[lid] = tile[lid];
}
)CLC",
                                     "-O2");
  const clc::WgInfo& info = kernel_info(m, "k");
  EXPECT_TRUE(info.eligible);
  EXPECT_EQ(info.region_count, 4u);
}

// Registers no instruction ever writes — the launch arguments in the
// parameter registers — are group-uniform: the VM installs them once per
// group, so the analysis must keep them out of the per-item spill set.
TEST(WgLoops, UniformArgumentsStayOutOfSpillSet) {
  const clc::Module m = compile_with(kTwoRegionKernel, "-O2");
  const clc::CompiledFunction* fn = m.find("k");
  ASSERT_NE(fn, nullptr);
  const auto index = static_cast<std::size_t>(fn - m.functions.data());
  const clc::WgInfo& info = m.wg_info[index];
  const clc::RegFunction& rf = m.reg_functions[index];
  // `out` sits in a parameter register and is read in the second region
  // but never written (the kernel never reassigns it); no parameter
  // register may appear in the per-item spill set.
  EXPECT_FALSE(info.live_regs.empty());
  for (std::uint16_t r : info.live_regs) {
    EXPECT_GE(r, rf.num_params) << "uniform parameter register " << r
                                << " in spill set";
  }
}

// Every save list is a subset of its entry's restore list: a register a
// region may modify is only worth writing back if the resumed region
// reads it again.
TEST(WgLoops, SaveListsAreSubsetsOfRestoreLists) {
  const clc::Module m = compile_with(kTwoRegionKernel, "-O2");
  const clc::WgInfo& info = kernel_info(m, "k");
  ASSERT_EQ(info.entry_lists.size(), info.save_lists.size());
  for (std::size_t e = 0; e < info.entry_lists.size(); ++e) {
    for (const auto& pair : info.save_lists[e]) {
      EXPECT_NE(std::find(info.entry_lists[e].begin(),
                          info.entry_lists[e].end(), pair),
                info.entry_lists[e].end())
          << "entry " << e << " saves reg " << pair.first
          << " it never restores";
    }
  }
}

TEST(WgLoops, WgLoopsOffBuildsNoWgForm) {
  const clc::Module m =
      compile_with(kTwoRegionKernel, "-O2 -cl-wg-loops=off");
  EXPECT_TRUE(m.has_reg_form());
  EXPECT_FALSE(m.has_wg_form());
}

TEST(WgLoops, StackInterpreterBuildsNoWgForm) {
  const clc::Module m = compile_with(kTwoRegionKernel, "-O2 -cl-interp=stack");
  EXPECT_FALSE(m.has_wg_form());
}

// A barrier reached through a helper call cannot be split into top-level
// regions; the kernel must fall back to per-item activations.
TEST(WgLoops, BarrierInHelperMakesKernelIneligible) {
  const clc::Module m = compile_with(R"CLC(
void sync_and_store(__local uint* tile, uint lid, uint v) {
  tile[lid] = v;
  barrier(CLK_LOCAL_MEM_FENCE);
}

__kernel void k(__global uint* out) {
  __local uint tile[16];
  uint lid = (uint)get_local_id(0);
  sync_and_store(tile, lid, lid * 2u);
  out[lid] = tile[15u - lid];
}
)CLC",
                                     "-O2");
  ASSERT_TRUE(m.has_wg_form());
  const clc::WgInfo& info = kernel_info(m, "k");
  EXPECT_FALSE(info.eligible);
}

}  // namespace
