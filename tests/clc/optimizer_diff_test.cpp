// Four-way differential harness over the interpreter/optimizer matrix:
//   O0 stack  vs  O2 stack       — the optimizer pipeline contract
//                                  (bit-identical outputs, never more ops);
//   O2 stack  vs  O2 threaded    — the register-lowering contract
//                                  (bit-identical outputs AND field-by-field
//                                  identical ExecStats: the block-level
//                                  accounting must sum to exactly what the
//                                  stack interpreter counts per instruction);
//   O2 threaded -cl-wg-loops=off vs on — the work-group-compilation
//                                  contract (running barrier regions as
//                                  work-item loops on one activation keeps
//                                  bits AND every counter, fuel semantics
//                                  included, identical to per-item runs).
// Every kernel in both corpora runs through all four configurations;
// semantics preservation down to the last bit, with measurable savings.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "benchsuite/floyd.hpp"
#include "benchsuite/kernel_corpus.hpp"
#include "clsim/runtime.hpp"
#include "exec_helper.hpp"
#include "hpl/HPL.h"

namespace bs = hplrepro::benchsuite;
namespace clc = hplrepro::clc;
namespace clsim = hplrepro::clsim;

namespace {

// --- Language-feature corpus -------------------------------------------------

struct DiffRun {
  std::vector<std::uint32_t> words;  // output buffer as raw 32-bit words
  clc::ExecStats stats;
  std::size_t static_instrs = 0;
};

/// Runs `kernel_name` over `global` items with one uint buffer of
/// `words` elements (zero-initialised) at the given build options.
DiffRun run_diff(const std::string& source, const std::string& kernel_name,
                 std::size_t words, std::size_t global, std::size_t local,
                 const std::string& options) {
  DiffRun run;
  run.words.assign(words, 0u);

  clsim::Context context(clc_test::test_device());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, words * sizeof(std::uint32_t));
  queue.enqueue_write_buffer(buffer, run.words.data(), buffer.size());

  clsim::Program program(context, source);
  program.build(options);
  for (const auto& fn : program.module().functions) {
    run.static_instrs += fn.code.size();
  }

  clsim::Kernel kernel(program, kernel_name);
  kernel.set_arg(0, buffer);
  std::optional<clsim::NDRange> local_range;
  if (local != 0) local_range = clsim::NDRange(local);
  clsim::Event e = queue.enqueue_ndrange_kernel(
      kernel, clsim::NDRange(global), local_range);
  e.wait();  // stats() exists only once the launch completes
  run.stats = e.stats();

  queue.enqueue_read_buffer(buffer, run.words.data(), buffer.size());
  queue.finish();
  return run;
}

// The two interpreters must agree on every counter: results equality
// alone would not catch a lowering pass that mis-sums a block histogram.
void expect_stats_identical(const clc::ExecStats& a, const clc::ExecStats& b,
                            const std::string& label) {
  EXPECT_EQ(a.control_ops, b.control_ops) << label;
  EXPECT_EQ(a.int_ops, b.int_ops) << label;
  EXPECT_EQ(a.float_ops, b.float_ops) << label;
  EXPECT_EQ(a.double_ops, b.double_ops) << label;
  EXPECT_EQ(a.special_ops, b.special_ops) << label;
  EXPECT_EQ(a.fused_ops, b.fused_ops) << label;
  EXPECT_EQ(a.global_load_bytes, b.global_load_bytes) << label;
  EXPECT_EQ(a.global_store_bytes, b.global_store_bytes) << label;
  EXPECT_EQ(a.global_accesses, b.global_accesses) << label;
  EXPECT_EQ(a.global_transactions, b.global_transactions) << label;
  EXPECT_EQ(a.local_bytes, b.local_bytes) << label;
  EXPECT_EQ(a.local_accesses, b.local_accesses) << label;
  EXPECT_EQ(a.private_bytes, b.private_bytes) << label;
  EXPECT_EQ(a.barriers_executed, b.barriers_executed) << label;
  EXPECT_EQ(a.items, b.items) << label;
  EXPECT_EQ(a.groups, b.groups) << label;
}

struct CorpusKernel {
  const char* label;
  const char* kernel_name;
  const char* source;
  std::size_t words;   // output buffer size in uints
  std::size_t global;  // NDRange size
  std::size_t local;   // work-group size; 0 = let the runtime pick
};

// Each kernel writes its results into a __global uint* (reinterpreting
// float bits where needed) so O0 and O2 outputs can be compared word for
// word. Together they cover the language surface the optimizer rewrites:
// loops, branches, integer widths, compound assignment, local memory with
// barriers, helper-function calls, conversions, logical ops, builtins,
// constant-heavy expressions and dead code.
const CorpusKernel kLanguageCorpus[] = {
    {"loops_break_continue", "k", R"CLC(
__kernel void k(__global uint* out) {
  size_t gid = get_global_id(0);
  uint acc = 0u;
  for (int i = 0; i < 64; i++) {
    if (i % 3 == 0) continue;
    if (i > (int)gid + 40) break;
    acc += (uint)i * 2u + 1u;
  }
  int j = 0;
  while (j < (int)(gid % 7u)) {
    acc ^= (uint)j << 2;
    j++;
  }
  out[gid] = acc;
}
)CLC",
     64, 64},
    {"conditionals", "k", R"CLC(
__kernel void k(__global uint* out) {
  size_t gid = get_global_id(0);
  int v = (int)gid - 32;
  uint r;
  if (v < -10) {
    r = 1u;
  } else if (v < 0) {
    r = 2u * (uint)(-v);
  } else if (v == 0) {
    r = 42u;
  } else {
    r = (v % 2 == 0) ? (uint)v : (uint)(3 * v + 1);
  }
  out[gid] = r + (gid > 16 ? 100u : 0u);
}
)CLC",
     64, 64},
    {"int_widths", "k", R"CLC(
__kernel void k(__global uint* out) {
  size_t gid = get_global_id(0);
  char c = (char)(gid * 37u);
  uchar uc = (uchar)(gid * 251u);
  short s = (short)(gid * 12345u);
  ushort us = (ushort)(gid * 54321u);
  long l = (long)gid * -123456789L;
  ulong ul = (ulong)gid * 0x9E3779B97F4A7C15UL;
  out[gid] = (uint)c + (uint)uc + (uint)s + (uint)us + (uint)(l >> 16) +
             (uint)(ul >> 32);
}
)CLC",
     64, 64},
    {"compound_assign", "k", R"CLC(
__kernel void k(__global uint* out) {
  size_t gid = get_global_id(0);
  uint x = (uint)gid + 1u;
  x += 7u; x *= 3u; x -= 5u; x /= 2u; x %= 1000u;
  x <<= 3; x >>= 1; x |= 0x10u; x &= 0xFFFu; x ^= 0x55u;
  int y = (int)gid - 8;
  y += (int)x; y *= -3; y /= 4; y %= 77;
  out[gid] = x + (uint)y;
}
)CLC",
     64, 64},
    {"local_mem_barrier", "k", R"CLC(
__kernel void k(__global uint* out) {
  __local uint tile[16];
  size_t lid = get_local_id(0);
  size_t gid = get_global_id(0);
  tile[lid] = (uint)gid * 3u + 1u;
  barrier(CLK_LOCAL_MEM_FENCE);
  uint sum = 0u;
  for (uint i = 0u; i < 16u; i++) {
    sum += tile[(lid + i) % 16u];
  }
  out[gid] = sum;
}
)CLC",
     64, 64, 16},
    {"function_calls", "k", R"CLC(
uint triple(uint v) { return v * 3u; }
uint square_plus(uint v, uint d) { return v * v + d; }
__kernel void k(__global uint* out) {
  size_t gid = get_global_id(0);
  uint a = triple((uint)gid);
  uint b = square_plus(a, triple(7u));
  out[gid] = b - square_plus((uint)gid, 0u);
}
)CLC",
     64, 64},
    {"conversions", "k", R"CLC(
__kernel void k(__global float* out) {
  size_t gid = get_global_id(0);
  float f = (float)gid * 0.75f - 20.5f;
  int i = (int)f;
  float g = (float)i + 0.5f;
  uint u = (uint)(g > 0.0f ? g : -g);
  double d = (double)f * 1.25;
  long l = (long)d;
  out[gid] = (float)u + (float)l * 0.5f + f;
}
)CLC",
     64, 64},
    {"logical_ops", "k", R"CLC(
__kernel void k(__global uint* out) {
  size_t gid = get_global_id(0);
  int a = (int)(gid % 5u);
  int b = (int)(gid % 3u);
  uint r = 0u;
  if (a && b) r |= 1u;
  if (a || !b) r |= 2u;
  if (!(a == b) && (a < b || b > 1)) r |= 4u;
  r |= (uint)((a != 0) & (b != 0)) << 3;
  out[gid] = r;
}
)CLC",
     64, 64},
    {"builtins", "k", R"CLC(
__kernel void k(__global float* out) {
  size_t gid = get_global_id(0);
  float x = (float)gid * 0.25f + 0.1f;
  float r = sqrt(x) + sin(x) * cos(x) + exp(x * 0.1f) + log(x + 1.0f);
  r += fmin(x, 2.0f) + fmax(x, 3.0f) + fabs(x - 5.0f) + floor(x) + pow(x, 1.5f);
  out[gid] = r;
}
)CLC",
     64, 64},
    {"constant_heavy", "k", R"CLC(
__kernel void k(__global uint* out) {
  size_t gid = get_global_id(0);
  // Everything here folds: the optimized kernel should be a handful of
  // instructions while the unoptimized one grinds through the arithmetic.
  uint c = (3u + 4u * 5u) * (100u / 4u) - (7u % 3u);
  int d = (1 << 10) / 64 + (255 & 0x0F) - (-8 >> 2);
  float e = 2.0f * 3.5f + 1.0f / 4.0f;
  uint x = (uint)gid * 1u + 0u;     // identities
  uint y = ((uint)gid * 8u) / 4u;   // strength-reducible
  out[gid] = c + (uint)d + (uint)e + x + y;
}
)CLC",
     64, 64},
    {"dead_code", "k", R"CLC(
__kernel void k(__global uint* out) {
  size_t gid = get_global_id(0);
  uint unused1 = (uint)gid * 99u;       // dead store
  float unused2 = (float)gid * 3.14f;   // dead store
  uint r = (uint)gid;
  if (0) { r = 12345u; }                // unreachable
  if (1) { r += 2u; } else { r = 7u; }  // constant branch
  for (int i = 0; i < 0; i++) { r ^= 0xDEADu; }  // trip-count-zero loop
  out[gid] = r;
}
)CLC",
     64, 64},
    {"mad_and_indexing", "k", R"CLC(
__kernel void k(__global uint* out) {
  size_t gid = get_global_id(0);
  size_t n = get_global_size(0);
  // Classic fusion bait: row*stride+col addressing and a*b+c arithmetic.
  size_t row = gid / 8u;
  size_t col = gid % 8u;
  uint v = out[row * 8u + col];
  float acc = (float)v;
  for (int i = 0; i < 4; i++) {
    acc = acc * 1.5f + (float)i;
  }
  out[(col * (n / 8u)) + row] = (uint)acc + (uint)(row * 8u + col);
}
)CLC",
     64, 64},
};

class OptimizerDiffLanguage
    : public ::testing::TestWithParam<CorpusKernel> {};

TEST_P(OptimizerDiffLanguage, BitIdenticalAndNoMoreOps) {
  const CorpusKernel& ck = GetParam();
  const DiffRun o0 = run_diff(ck.source, ck.kernel_name, ck.words,
                              ck.global, ck.local, "-O0 -cl-interp=stack");
  const DiffRun o2 = run_diff(ck.source, ck.kernel_name, ck.words,
                              ck.global, ck.local, "-O2 -cl-interp=stack");
  const DiffRun reg =
      run_diff(ck.source, ck.kernel_name, ck.words, ck.global, ck.local,
               "-O2 -cl-interp=threaded -cl-wg-loops=off");
  const DiffRun wg = run_diff(ck.source, ck.kernel_name, ck.words,
                              ck.global, ck.local, "-O2 -cl-interp=threaded");

  ASSERT_EQ(o0.words.size(), o2.words.size());
  for (std::size_t i = 0; i < o0.words.size(); ++i) {
    EXPECT_EQ(o0.words[i], o2.words[i]) << ck.label << " word " << i;
  }
  EXPECT_LE(o2.stats.total_ops(), o0.stats.total_ops()) << ck.label;
  EXPECT_LE(o2.static_instrs, o0.static_instrs) << ck.label;

  // Register interpreter: same bytecode, same bits, same counters.
  EXPECT_EQ(o2.words, reg.words) << ck.label;
  expect_stats_identical(o2.stats, reg.stats, ck.label);

  // Work-group compilation: same bits, same counters again.
  EXPECT_EQ(reg.words, wg.words) << ck.label;
  expect_stats_identical(reg.stats, wg.stats, ck.label);
}

INSTANTIATE_TEST_SUITE_P(
    LanguageCorpus, OptimizerDiffLanguage,
    ::testing::ValuesIn(kLanguageCorpus),
    [](const ::testing::TestParamInfo<CorpusKernel>& info) {
      return std::string(info.param.label);
    });

// --- Benchsuite corpus -------------------------------------------------------

// EP's outputs pass through sqrt/log/exp; every other benchmark is plain
// arithmetic. The optimizer never touches builtin evaluation, so even EP
// comes out bit-identical — but per the harness contract transcendental
// results are compared with a small ULP tolerance, everything else
// exactly.
bool kernel_uses_transcendentals(const std::string& name) {
  return name == "ep";
}

std::int64_t ulp_distance_f64(double a, double b) {
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  return ia > ib ? ia - ib : ib - ia;
}

class OptimizerDiffBenchsuite
    : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerDiffBenchsuite, BitIdenticalAndNoMoreOps) {
  const std::string& name = GetParam();
  const clsim::Device device =
      *clsim::Platform::get().device_by_name("Tesla");
  const bs::CorpusRun o0 =
      bs::run_corpus_kernel(name, device, "-O0 -cl-interp=stack");
  const bs::CorpusRun o2 =
      bs::run_corpus_kernel(name, device, "-O2 -cl-interp=stack");
  const bs::CorpusRun reg = bs::run_corpus_kernel(
      name, device, "-O2 -cl-interp=threaded -cl-wg-loops=off");
  const bs::CorpusRun wg =
      bs::run_corpus_kernel(name, device, "-O2 -cl-interp=threaded");

  // The interpreter swap has no float tolerance at all: both execute the
  // same O2 bytecode, so even EP's transcendental outputs must be
  // bit-for-bit equal, and every dynamic counter must match. The same
  // holds for the work-item-loop execution of that bytecode.
  EXPECT_EQ(o2.outputs, reg.outputs) << name;
  expect_stats_identical(o2.stats, reg.stats, name);
  EXPECT_EQ(reg.outputs, wg.outputs) << name;
  expect_stats_identical(reg.stats, wg.stats, name);

  ASSERT_EQ(o0.outputs.size(), o2.outputs.size());
  for (std::size_t b = 0; b < o0.outputs.size(); ++b) {
    const auto& a = o0.outputs[b];
    const auto& c = o2.outputs[b];
    ASSERT_EQ(a.size(), c.size()) << name << " buffer " << b;
    if (kernel_uses_transcendentals(name) && b < 2) {
      // sx/sy: doubles through sqrt/log — allow 2 ULP.
      for (std::size_t i = 0; i + sizeof(double) <= a.size();
           i += sizeof(double)) {
        double x, y;
        std::memcpy(&x, a.data() + i, sizeof(x));
        std::memcpy(&y, c.data() + i, sizeof(y));
        EXPECT_LE(ulp_distance_f64(x, y), 2)
            << name << " buffer " << b << " byte " << i;
      }
    } else {
      EXPECT_EQ(0, std::memcmp(a.data(), c.data(), a.size()))
          << name << " buffer " << b;
    }
  }

  EXPECT_LE(o2.stats.total_ops(), o0.stats.total_ops()) << name;
  EXPECT_LE(o2.static_instrs, o0.static_instrs) << name;
  EXPECT_EQ(o2.opt_report.level, clc::OptLevel::O2);
  EXPECT_EQ(o0.opt_report.level, clc::OptLevel::O0);
}

// The corpus rows plus the barrier-heavy extras — the rows where the
// work-group-compilation contract is under the most pressure.
std::vector<std::string> diff_kernel_names() {
  std::vector<std::string> names = bs::corpus_kernel_names();
  for (const std::string& name : bs::barrier_kernel_names()) {
    names.push_back(name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(BenchKernels, OptimizerDiffBenchsuite,
                         ::testing::ValuesIn(diff_kernel_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// The tentpole's acceptance criterion: the optimizer must strictly reduce
// the dynamic op count on at least 3 of the 5 paper benchmarks.
TEST(OptimizerDiff, DynamicOpsDropOnBenchsuite) {
  const clsim::Device device =
      *clsim::Platform::get().device_by_name("Tesla");
  int strict_reductions = 0;
  for (const std::string& name : bs::corpus_kernel_names()) {
    const bs::CorpusRun o0 = bs::run_corpus_kernel(name, device, "-O0");
    const bs::CorpusRun o2 = bs::run_corpus_kernel(name, device, "-O2");
    EXPECT_LE(o2.stats.total_ops(), o0.stats.total_ops()) << name;
    if (o2.stats.total_ops() < o0.stats.total_ops()) ++strict_reductions;
  }
  EXPECT_GE(strict_reductions, 3);
}

// The optimizer reports per-kernel before/after counts, exposed through
// the program object (the analogue of a driver's -cl-opt-info remarks).
TEST(OptimizerDiff, OptReportCarriesPerKernelCounts) {
  clsim::Context context(clc_test::test_device());
  clsim::Program program(context, bs::floyd_kernel_source());
  program.build();  // driver default: O2

  const clc::OptReport& report = program.opt_report();
  EXPECT_EQ(report.level, clc::OptLevel::O2);
  bool found = false;
  for (const auto& fn : report.functions) {
    if (fn.name != "floyd_pass") continue;
    found = true;
    EXPECT_TRUE(fn.is_kernel);
    EXPECT_LT(fn.instrs_after, fn.instrs_before);
    EXPECT_GT(fn.instrs_fused, 0u);
  }
  EXPECT_TRUE(found);
  EXPECT_NE(report.summary().find("floyd_pass"), std::string::npos)
      << report.summary();
}

// The HPL layer threads build options into its generated-kernel builds:
// O0 and O2 runs of a captured kernel must also agree bit for bit.
void hpl_diff_kernel(HPL::Array<float, 1> y, HPL::Array<float, 1> x,
                     HPL::Float a) {
  using namespace HPL;
  y[idx] = a * x[idx] * 1.0f + (y[idx] + 0.0f) * 2.0f;
}

TEST(OptimizerDiff, HplBuildOptionsThreadThrough) {
  std::vector<float> results[2];
  const std::string options[2] = {"-cl-opt-disable", "-O2"};
  for (int run = 0; run < 2; ++run) {
    HPL::set_kernel_build_options(options[run]);
    EXPECT_EQ(HPL::kernel_build_options(), options[run]);
    HPL::Array<float, 1> x(64), y(64);
    for (int i = 0; i < 64; ++i) {
      x(i) = 0.37f * static_cast<float>(i) - 3.0f;
      y(i) = 1.0f / (static_cast<float>(i) + 1.0f);
    }
    HPL::Float a;
    a = 1.5f;
    HPL::eval(hpl_diff_kernel)(y, x, a);
    for (int i = 0; i < 64; ++i) results[run].push_back(y(i));
  }
  HPL::set_kernel_build_options("");
  EXPECT_EQ(results[0], results[1]);
}

TEST(OptimizerDiff, HplRejectsUnknownBuildOptions) {
  EXPECT_THROW(HPL::set_kernel_build_options("-fbogus"),
               hplrepro::InvalidArgument);
  EXPECT_EQ(HPL::kernel_build_options(), "");
}

// A suspended work-item in the register interpreter is nothing but its
// saved register file plus the block cursor to resume at. This kernel
// carries live private state (float, double and integer accumulators) in
// registers across eight barrier suspensions, exchanging data through
// __local in between; any register lost or clobbered during a
// suspend/resume cycle changes the output bits. Stack and threaded runs
// must agree exactly, and must have actually suspended (barriers > 0).
TEST(OptimizerDiff, BarrierResumePreservesRegisterFile) {
  const std::string source = R"CLC(
__kernel void relay(__global uint* out) {
  __local float tile[16];
  size_t lid = get_local_id(0);
  size_t gid = get_global_id(0);
  float facc = (float)gid * 0.5f + 1.0f;
  double dacc = (double)gid * 0.25;
  uint iacc = (uint)gid * 2654435761u;
  for (int round = 0; round < 8; round++) {
    tile[lid] = facc + (float)round;
    barrier(CLK_LOCAL_MEM_FENCE);
    float neighbor = tile[(lid + 1u) % 16u];
    barrier(CLK_LOCAL_MEM_FENCE);
    facc = facc * 1.25f + neighbor;
    dacc += (double)neighbor * 0.5;
    iacc = (iacc ^ (uint)round) * 31u + (uint)facc;
  }
  out[gid * 3u] = iacc;
  out[gid * 3u + 1u] = (uint)(facc * 16.0f);
  out[gid * 3u + 2u] = (uint)(dacc * 256.0);
}
)CLC";
  const DiffRun stack =
      run_diff(source, "relay", 64 * 3, 64, 16, "-O2 -cl-interp=stack");
  const DiffRun reg = run_diff(source, "relay", 64 * 3, 64, 16,
                               "-O2 -cl-interp=threaded -cl-wg-loops=off");
  const DiffRun wg =
      run_diff(source, "relay", 64 * 3, 64, 16, "-O2 -cl-interp=threaded");
  EXPECT_EQ(stack.words, reg.words);
  expect_stats_identical(stack.stats, reg.stats, "relay");
  // Work-group compilation replaces the suspend/resume machinery with
  // per-region spill rows; any value lost across a region switch (or a
  // spill row clobbered by another item) changes the bits.
  EXPECT_EQ(reg.words, wg.words);
  expect_stats_identical(reg.stats, wg.stats, "relay");
  // 64 items x 16 barrier executions each (2 per round x 8 rounds).
  EXPECT_EQ(reg.stats.barriers_executed, 64u * 16u);
  EXPECT_EQ(wg.stats.barriers_executed, 64u * 16u);
}

// A barrier inside a divergent branch must trap — not deadlock, not
// silently release — in BOTH execution modes. The work-item-loop mode has
// its own phase bookkeeping (items finishing while others park at a
// barrier), so it gets its own regression here, next to the item-mode
// scheduler's.
TEST(OptimizerDiff, DivergentBarrierTrapsInBothModes) {
  const std::string source = R"CLC(
__kernel void diverge(__global uint* out) {
  size_t lid = get_local_id(0);
  if (lid < 8u) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[get_global_id(0)] = (uint)lid;
}
)CLC";
  for (const char* options :
       {"-O2 -cl-interp=threaded -cl-wg-loops=off",
        "-O2 -cl-interp=threaded"}) {
    EXPECT_THROW(run_diff(source, "diverge", 16, 16, 16, options),
                 clc::TrapError)
        << options;
  }
}

// Sanity for the option-string surface the harness depends on.
TEST(OptimizerDiff, BuildOptionVariantsAreEquivalent) {
  const std::string source = clc_test::expr_kernel("uint", "7u * 6u + 1u");
  const auto def = clc_test::eval_scalar_kernel<std::uint32_t>(source);
  const auto o0 =
      clc_test::eval_scalar_kernel<std::uint32_t>(source, "-cl-opt-disable");
  const auto o2 = clc_test::eval_scalar_kernel<std::uint32_t>(source, "-O2");
  EXPECT_EQ(def, 43u);
  EXPECT_EQ(o0, 43u);
  EXPECT_EQ(o2, 43u);
}

}  // namespace
