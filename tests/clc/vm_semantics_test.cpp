// Semantics of the clc VM: C arithmetic rules (integer widths, signedness,
// wraparound, conversions), control flow, functions, arrays and traps —
// each checked by compiling and executing real OpenCL C.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "exec_helper.hpp"

using clc_test::eval_scalar_kernel;
using clc_test::expr_kernel;
using clc_test::run_kernel_1buf;

namespace {

// --- Integer semantics ---------------------------------------------------------

TEST(VmSemantics, Int32WrapsOnOverflow) {
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel(
                "int", "a + 1", "  int a = 2147483647;\n")),
            std::numeric_limits<std::int32_t>::min());
}

TEST(VmSemantics, Int32MultiplyWraps) {
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel(
                "int", "a * a", "  int a = 100000;\n")),
            static_cast<std::int32_t>(100000ll * 100000ll));
}

TEST(VmSemantics, LongDoesNotWrapAt32Bits) {
  EXPECT_EQ(eval_scalar_kernel<std::int64_t>(expr_kernel(
                "long", "a * a", "  long a = 100000;\n")),
            100000ll * 100000ll);
}

TEST(VmSemantics, UnsignedDivisionIsUnsigned) {
  // 0xFFFFFFFE / 2 as uint = 0x7FFFFFFF; as int it would be -1.
  EXPECT_EQ(eval_scalar_kernel<std::uint32_t>(expr_kernel(
                "uint", "a / 2u", "  uint a = 4294967294u;\n")),
            0x7FFFFFFFu);
}

TEST(VmSemantics, SignedDivisionTruncatesTowardZero) {
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(
                expr_kernel("int", "(-7) / 2")),
            -3);
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(
                expr_kernel("int", "(-7) % 2")),
            -1);
}

TEST(VmSemantics, DivisionByZeroYieldsZeroNotCrash) {
  // OpenCL leaves this undefined; the VM must at least not kill the host.
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(
                expr_kernel("int", "a / b", "  int a = 5;\n  int b = 0;\n")),
            0);
}

TEST(VmSemantics, ShiftWorksOnPromotedType) {
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel("int", "1 << 20")),
            1 << 20);
  EXPECT_EQ(eval_scalar_kernel<std::uint32_t>(expr_kernel(
                "uint", "a >> 4", "  uint a = 0xF0000000u;\n")),
            0x0F000000u);
  // Arithmetic shift for signed values.
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel(
                "int", "a >> 4", "  int a = -64;\n")),
            -4);
}

TEST(VmSemantics, CharArithmeticWrapsAt8Bits) {
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel(
                "int", "(int)c", "  char c = 127;\n  c = c + 1;\n")),
            -128);
}

TEST(VmSemantics, UcharZeroExtends) {
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel(
                "int", "(int)c + 1", "  uchar c = 255;\n")),
            256);
}

TEST(VmSemantics, MixedSignedUnsignedComparisonUsesUnsigned) {
  // -1 converted to uint compares greater than 1 (C's usual conversions).
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel(
                "int", "(a > b) ? 1 : 0",
                "  int ai = -1;\n  uint b = 1u;\n  uint a = (uint)ai;\n")),
            1);
}

// --- Floating point ---------------------------------------------------------------

TEST(VmSemantics, FloatArithmeticIsSinglePrecision) {
  // 1 + 2^-30 rounds to 1 in float but not in double.
  EXPECT_EQ(eval_scalar_kernel<float>(expr_kernel(
                "float", "a + b",
                "  float a = 1.0f;\n  float b = 9.313225746154785e-10f;\n")),
            1.0f);
  EXPECT_GT(eval_scalar_kernel<double>(expr_kernel(
                "double", "a + b",
                "  double a = 1.0;\n  double b = 9.313225746154785e-10;\n")),
            1.0);
}

TEST(VmSemantics, FloatToIntTruncates) {
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(
                expr_kernel("int", "(int)2.9f")),
            2);
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(
                expr_kernel("int", "(int)(-2.9f)")),
            -2);
}

TEST(VmSemantics, IntToFloatConversion) {
  EXPECT_EQ(eval_scalar_kernel<float>(expr_kernel(
                "float", "(float)a / 4.0f", "  int a = 10;\n")),
            2.5f);
}

TEST(VmSemantics, UlongToDoubleIsUnsigned) {
  EXPECT_EQ(eval_scalar_kernel<double>(expr_kernel(
                "double", "(double)a",
                "  ulong a = 18446744073709551615ul;\n")),
            1.8446744073709552e19);
}

TEST(VmSemantics, MathBuiltins) {
  EXPECT_FLOAT_EQ(eval_scalar_kernel<float>(expr_kernel(
                      "float", "sqrt(2.0f)")),
                  std::sqrt(2.0f));
  EXPECT_DOUBLE_EQ(eval_scalar_kernel<double>(expr_kernel(
                       "double", "log(2.0)")),
                   std::log(2.0));
  EXPECT_FLOAT_EQ(eval_scalar_kernel<float>(expr_kernel(
                      "float", "fmax(1.5f, -2.0f)")),
                  1.5f);
  EXPECT_FLOAT_EQ(eval_scalar_kernel<float>(expr_kernel(
                      "float", "mad(2.0f, 3.0f, 4.0f)")),
                  10.0f);
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel(
                "int", "clamp(12, 0, 10)")),
            10);
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel(
                "int", "abs(-5)")),
            5);
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(expr_kernel(
                "int", "min(3, -7)")),
            -7);
}

// --- Control flow --------------------------------------------------------------------

TEST(VmSemantics, ForLoopBreakContinue) {
  const char* src = R"(
__kernel void k(__global int* out) {
  int sum = 0;
  for (int i = 0; i < 100; i++) {
    if (i % 2 == 0) continue;
    if (i > 10) break;
    sum += i;  /* 1+3+5+7+9 = 25 */
  }
  out[0] = sum;
}
)";
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(src), 25);
}

TEST(VmSemantics, WhileAndDoWhile) {
  const char* src = R"(
__kernel void k(__global int* out) {
  int i = 0;
  int sum = 0;
  while (i < 5) {
    sum += i;
    i++;
  }
  do {
    sum += 100;
  } while (0);
  out[0] = sum;  /* 10 + 100 */
}
)";
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(src), 110);
}

TEST(VmSemantics, TernaryAndShortCircuit) {
  const char* src = R"(
__kernel void k(__global int* out) {
  int zero = 0;
  int never = (zero && (1 / zero)) ? 7 : 3;  /* && guards the division */
  int yes = (1 || zero) ? 10 : 20;
  out[0] = never + yes;
}
)";
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(src), 13);
}

TEST(VmSemantics, NestedLoops) {
  const char* src = R"(
__kernel void k(__global int* out) {
  int count = 0;
  for (int i = 0; i < 10; i++) {
    for (int j = 0; j < 10; j++) {
      if (i == j) continue;
      count++;
    }
  }
  out[0] = count;  /* 90 */
}
)";
  EXPECT_EQ(eval_scalar_kernel<std::int32_t>(src), 90);
}

// --- Functions -------------------------------------------------------------------------

TEST(VmSemantics, FunctionCallsWithConversions) {
  const char* src = R"(
float average(float a, float b) {
  return (a + b) / 2.0f;
}
int twice(int x) { return x * 2; }

__kernel void k(__global float* out) {
  out[0] = average((float)twice(3), 4.0f);  /* (6+4)/2 = 5 */
}
)";
  EXPECT_EQ(eval_scalar_kernel<float>(src), 5.0f);
}

TEST(VmSemantics, FunctionWithPointerParameter) {
  const char* src = R"(
float sum3(__global const float* p, int base) {
  return p[base] + p[base + 1] + p[base + 2];
}

__kernel void k(__global float* data) {
  data[0] = sum3(data, 1);
}
)";
  std::vector<float> data = {0.0f, 1.0f, 2.0f, 3.0f};
  data = run_kernel_1buf<float>(src, "k", std::move(data), 1);
  EXPECT_EQ(data[0], 6.0f);
}

// --- Arrays ---------------------------------------------------------------------------

TEST(VmSemantics, PrivateArraysArePerWorkItem) {
  const char* src = R"(
__kernel void k(__global int* out) {
  int scratch[8];
  size_t tid = get_global_id(0);
  for (int i = 0; i < 8; i++) {
    scratch[i] = (int)tid * 10 + i;
  }
  int sum = 0;
  for (int i = 0; i < 8; i++) {
    sum += scratch[i];
  }
  out[tid] = sum;
}
)";
  std::vector<std::int32_t> out(4, 0);
  out = run_kernel_1buf<std::int32_t>(src, "k", std::move(out), 4);
  for (std::int32_t tid = 0; tid < 4; ++tid) {
    EXPECT_EQ(out[tid], tid * 80 + 28) << tid;
  }
}

TEST(VmSemantics, PointerArithmetic) {
  const char* src = R"(
__kernel void k(__global float* data) {
  __global float* p = data + 2;
  p[0] = 42.0f;
  *(0 + p) = p[0] + 1.0f;   /* p[0] again via + */
}
)";
  // Note: unary * is not in the subset; use index form instead.
  const char* src_ok = R"(
__kernel void k(__global float* data) {
  __global float* p = data + 2;
  p[0] = 42.0f;
  p[1] = p[0] + 1.0f;
}
)";
  (void)src;
  std::vector<float> data(4, 0.0f);
  data = run_kernel_1buf<float>(src_ok, "k", std::move(data), 1);
  EXPECT_EQ(data[2], 42.0f);
  EXPECT_EQ(data[3], 43.0f);
}

// --- Work-item functions ----------------------------------------------------------------

TEST(VmSemantics, WorkItemIdentification) {
  const char* src = R"(
__kernel void k(__global int* out) {
  size_t gid = get_global_id(0);
  out[gid] = (int)(get_group_id(0) * 1000 + get_local_id(0) * 10 +
                   get_local_size(0));
}
)";
  std::vector<std::int32_t> out(8, 0);
  out = run_kernel_1buf<std::int32_t>(src, "k", std::move(out), 8, 4);
  for (std::int32_t gid = 0; gid < 8; ++gid) {
    const std::int32_t group = gid / 4, lid = gid % 4;
    EXPECT_EQ(out[gid], group * 1000 + lid * 10 + 4) << gid;
  }
}

// --- Traps ------------------------------------------------------------------------------

TEST(VmSemantics, OutOfBoundsAccessTraps) {
  const char* src = R"(
__kernel void k(__global int* out) {
  out[1000000] = 1;
}
)";
  std::vector<std::int32_t> out(4, 0);
  EXPECT_THROW(run_kernel_1buf<std::int32_t>(src, "k", out, 1),
               hplrepro::clc::TrapError);
}

TEST(VmSemantics, InfiniteLoopTrapsOnFuel) {
  const char* src = R"(
__kernel void k(__global int* out) {
  int i = 0;
  while (1) {
    i++;
  }
  out[0] = i;
}
)";
  const std::uint64_t saved = hplrepro::clsim::work_item_fuel();
  hplrepro::clsim::set_work_item_fuel(1 << 20);
  std::vector<std::int32_t> out(1, 0);
  EXPECT_THROW(run_kernel_1buf<std::int32_t>(src, "k", out, 1),
               hplrepro::clc::TrapError);
  hplrepro::clsim::set_work_item_fuel(saved);
}

}  // namespace
