// Conversion-matrix property sweep: casting a set of probe values through
// every ordered pair of scalar types must agree with native C++ casts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "exec_helper.hpp"
#include "support/strings.hpp"

namespace {

// Values are generated from a double master value per source type; the
// expected result is computed by the same double -> From -> To chain in
// native C++.
struct ConvCase {
  const char* from;
  const char* to;
  double value;
};

template <typename From, typename To>
double reference_cast(double v) {
  return static_cast<double>(static_cast<To>(static_cast<From>(v)));
}

double reference(const std::string& from, const std::string& to, double v) {
  auto inner = [&]<typename From>() -> double {
    if (to == "char") return reference_cast<From, std::int8_t>(v);
    if (to == "uchar") return reference_cast<From, std::uint8_t>(v);
    if (to == "short") return reference_cast<From, std::int16_t>(v);
    if (to == "ushort") return reference_cast<From, std::uint16_t>(v);
    if (to == "int") return reference_cast<From, std::int32_t>(v);
    if (to == "uint") return reference_cast<From, std::uint32_t>(v);
    if (to == "long") return reference_cast<From, std::int64_t>(v);
    if (to == "float") return reference_cast<From, float>(v);
    if (to == "double") return reference_cast<From, double>(v);
    ADD_FAILURE() << "bad to-type " << to;
    return 0;
  };
  if (from == "char") return inner.template operator()<std::int8_t>();
  if (from == "uchar") return inner.template operator()<std::uint8_t>();
  if (from == "short") return inner.template operator()<std::int16_t>();
  if (from == "ushort") return inner.template operator()<std::uint16_t>();
  if (from == "int") return inner.template operator()<std::int32_t>();
  if (from == "uint") return inner.template operator()<std::uint32_t>();
  if (from == "long") return inner.template operator()<std::int64_t>();
  if (from == "float") return inner.template operator()<float>();
  if (from == "double") return inner.template operator()<double>();
  ADD_FAILURE() << "bad from-type " << from;
  return 0;
}

class ConversionMatrix : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConversionMatrix, MatchesNativeCxx) {
  const ConvCase& c = GetParam();
  // Kernel: double master value -> From (via cast) -> To -> double out.
  const std::string src =
      "__kernel void k(__global double* out) {\n"
      "  double master = " + hplrepro::double_literal(c.value) + ";\n"
      "  " + c.from + " source = (" + c.from + ")master;\n"
      "  " + c.to + " converted = (" + c.to + ")source;\n"
      "  out[0] = (double)converted;\n}\n";
  const double got = clc_test::eval_scalar_kernel<double>(src);
  const double want = reference(c.from, c.to, c.value);
  EXPECT_EQ(got, want) << c.from << " -> " << c.to << " of " << c.value;
}

bool is_floating_type(const std::string& t) {
  return t == "float" || t == "double";
}

bool fits_integral(const std::string& t, double v) {
  const double truncated = std::trunc(v);
  if (t == "char") return truncated >= -128 && truncated <= 127;
  if (t == "uchar") return truncated >= 0 && truncated <= 255;
  if (t == "short") return truncated >= -32768 && truncated <= 32767;
  if (t == "ushort") return truncated >= 0 && truncated <= 65535;
  if (t == "int") return truncated >= -2147483648.0 && truncated <= 2147483647.0;
  if (t == "uint") return truncated >= 0 && truncated <= 4294967295.0;
  if (t == "long") return true;  // probe values are small
  return true;
}

std::vector<ConvCase> conversion_cases() {
  const char* types[] = {"char", "uchar", "short", "ushort", "int",
                         "uint", "long",  "float", "double"};
  // Probe values chosen to exercise sign extension, truncation and
  // rounding.
  const double values[] = {0.0, 1.0, -1.0, 100.0, 200.0, -200.0,
                           65535.0, 1e4, 2.75, -3.25};
  std::vector<ConvCase> cases;
  for (const char* from : types) {
    for (const char* to : types) {
      for (const double v : values) {
        // Skip chains whose floating -> integral step is out of range:
        // that is undefined behaviour in C, so no single answer exists
        // (the VM saturates, hardware typically wraps).
        if (!is_floating_type(from) && !fits_integral(from, v)) continue;
        if (is_floating_type(from) && !is_floating_type(to) &&
            !fits_integral(to, v)) {
          continue;
        }
        cases.push_back({from, to, v});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ConversionMatrix,
                         ::testing::ValuesIn(conversion_cases()));

}  // namespace
