// Every math builtin, executed through the VM and compared against the
// host libm (which is the simulator's reference implementation), swept
// over a grid of arguments with TEST_P.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "exec_helper.hpp"
#include "support/strings.hpp"

namespace {

struct UnaryCase {
  const char* name;
  double (*reference)(double);
  double arg;
};

class UnaryMathBuiltin : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryMathBuiltin, DoubleVariantMatchesLibm) {
  const UnaryCase& c = GetParam();
  const std::string src =
      "__kernel void k(__global double* out) {\n  out[0] = " +
      std::string(c.name) + "(" + hplrepro::double_literal(c.arg) + ");\n}\n";
  const double got = clc_test::eval_scalar_kernel<double>(src);
  const double want = c.reference(c.arg);
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got)) << c.name << '(' << c.arg << ')';
  } else {
    EXPECT_DOUBLE_EQ(got, want) << c.name << '(' << c.arg << ')';
  }
}

TEST_P(UnaryMathBuiltin, FloatVariantMatchesLibm) {
  const UnaryCase& c = GetParam();
  const float arg = static_cast<float>(c.arg);
  const std::string src =
      "__kernel void k(__global float* out) {\n  out[0] = " +
      std::string(c.name) + "(" + hplrepro::float_literal(arg) + ");\n}\n";
  const float got = clc_test::eval_scalar_kernel<float>(src);
  const float want = [&] {
    // Reference: the float overload of the same libm function.
    if (std::string(c.name) == "sqrt") return std::sqrt(arg);
    if (std::string(c.name) == "fabs") return std::fabs(arg);
    if (std::string(c.name) == "exp") return std::exp(arg);
    if (std::string(c.name) == "log") return std::log(arg);
    if (std::string(c.name) == "sin") return std::sin(arg);
    if (std::string(c.name) == "cos") return std::cos(arg);
    if (std::string(c.name) == "floor") return std::floor(arg);
    if (std::string(c.name) == "ceil") return std::ceil(arg);
    if (std::string(c.name) == "trunc") return std::trunc(arg);
    if (std::string(c.name) == "round") return std::round(arg);
    if (std::string(c.name) == "exp2") return std::exp2(arg);
    if (std::string(c.name) == "log2") return std::log2(arg);
    if (std::string(c.name) == "log10") return std::log10(arg);
    if (std::string(c.name) == "tan") return std::tan(arg);
    if (std::string(c.name) == "atan") return std::atan(arg);
    return std::nanf("");
  }();
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got)) << c.name << '(' << arg << ')';
  } else {
    EXPECT_FLOAT_EQ(got, want) << c.name << '(' << arg << ')';
  }
}

std::vector<UnaryCase> unary_cases() {
  struct Fn {
    const char* name;
    double (*fn)(double);
  };
  const Fn fns[] = {
      {"sqrt", std::sqrt}, {"fabs", std::fabs},   {"exp", std::exp},
      {"log", std::log},   {"sin", std::sin},     {"cos", std::cos},
      {"floor", std::floor}, {"ceil", std::ceil}, {"trunc", std::trunc},
      {"round", std::round}, {"exp2", std::exp2}, {"log2", std::log2},
      {"log10", std::log10}, {"tan", std::tan},   {"atan", std::atan},
  };
  const double args[] = {0.25, 1.0, 2.5, 9.0, 0.0, -1.5};
  std::vector<UnaryCase> cases;
  for (const auto& fn : fns) {
    for (const double a : args) {
      cases.push_back({fn.name, fn.fn, a});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnaryMathBuiltin,
                         ::testing::ValuesIn(unary_cases()));

TEST(BinaryMathBuiltin, PowAtan2FmodHypot) {
  using clc_test::eval_scalar_kernel;
  using clc_test::expr_kernel;
  EXPECT_DOUBLE_EQ(eval_scalar_kernel<double>(
                       expr_kernel("double", "pow(3.0, 4.0)")),
                   81.0);
  EXPECT_DOUBLE_EQ(eval_scalar_kernel<double>(
                       expr_kernel("double", "atan2(1.0, 1.0)")),
                   std::atan2(1.0, 1.0));
  EXPECT_DOUBLE_EQ(eval_scalar_kernel<double>(
                       expr_kernel("double", "fmod(7.5, 2.0)")),
                   1.5);
  EXPECT_DOUBLE_EQ(eval_scalar_kernel<double>(
                       expr_kernel("double", "hypot(3.0, 4.0)")),
                   5.0);
  EXPECT_DOUBLE_EQ(eval_scalar_kernel<double>(
                       expr_kernel("double", "fma(2.0, 3.0, 1.0)")),
                   7.0);
  EXPECT_FLOAT_EQ(eval_scalar_kernel<float>(
                      expr_kernel("float", "rsqrt(4.0f)")),
                  0.5f);
}

TEST(BinaryMathBuiltin, MixedArgumentsPromoteToDouble) {
  // pow(float, double) must compute in double.
  using clc_test::eval_scalar_kernel;
  using clc_test::expr_kernel;
  EXPECT_DOUBLE_EQ(eval_scalar_kernel<double>(expr_kernel(
                       "double", "pow(x, 0.5)", "  float x = 2.0f;\n")),
                   std::sqrt(2.0));
}

TEST(BinaryMathBuiltin, UnsignedMinMaxClamp) {
  using clc_test::eval_scalar_kernel;
  using clc_test::expr_kernel;
  // 0xFFFFFFFF as uint is the max, not -1.
  EXPECT_EQ(eval_scalar_kernel<std::uint32_t>(expr_kernel(
                "uint", "max(a, 1u)", "  uint a = 4294967295u;\n")),
            4294967295u);
  EXPECT_EQ(eval_scalar_kernel<std::uint32_t>(expr_kernel(
                "uint", "clamp(a, 0u, 10u)", "  uint a = 4294967295u;\n")),
            10u);
}

}  // namespace
