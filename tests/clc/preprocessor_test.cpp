// The clc mini-preprocessor: object-like #define, #undef, #pragma, and
// rejection of what it does not support.

#include <gtest/gtest.h>

#include "clc/compile.hpp"
#include "clc/lexer.hpp"
#include "clc/preprocessor.hpp"
#include "exec_helper.hpp"

using namespace hplrepro::clc;

namespace {

TEST(Preprocessor, ObjectLikeDefine) {
  const char* src = R"(
#define ANSWER 42
__kernel void k(__global int* out) { out[0] = ANSWER; }
)";
  EXPECT_EQ(clc_test::eval_scalar_kernel<std::int32_t>(src), 42);
}

TEST(Preprocessor, DefineWithExpressionBody) {
  const char* src = R"(
#define TILE 16
#define TILE_SQ (TILE * TILE)
__kernel void k(__global int* out) { out[0] = TILE_SQ + TILE; }
)";
  EXPECT_EQ(clc_test::eval_scalar_kernel<std::int32_t>(src), 272);
}

TEST(Preprocessor, NestedDefinesExpand) {
  const char* src = R"(
#define A B
#define B C
#define C 7
__kernel void k(__global int* out) { out[0] = A; }
)";
  EXPECT_EQ(clc_test::eval_scalar_kernel<std::int32_t>(src), 7);
}

TEST(Preprocessor, UndefRemovesMacro) {
  DiagnosticSink diags;
  auto result = preprocess("#define X 1\n#undef X\nint f(void) { return 0; }\n",
                           diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(result.macros.empty());
}

TEST(Preprocessor, PragmaIgnored) {
  const char* src = R"(
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
__kernel void k(__global double* out) { out[0] = 1.5; }
)";
  EXPECT_EQ(clc_test::eval_scalar_kernel<double>(src), 1.5);
}

TEST(Preprocessor, LineNumbersPreservedAcrossDirectives) {
  // The directive occupies line 2; the error is on line 3.
  try {
    compile("\n#define GOOD 1\n__kernel void k(__global int* o) { o[0] = bad; }\n");
    FAIL() << "expected error";
  } catch (const CompileError& e) {
    EXPECT_NE(e.build_log().find("3:"), std::string::npos) << e.build_log();
  }
}

TEST(Preprocessor, FunctionLikeMacroRejected) {
  DiagnosticSink diags;
  preprocess("#define SQR(x) ((x)*(x))\n", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.log().find("function-like"), std::string::npos);
}

TEST(Preprocessor, UnknownDirectiveRejected) {
  DiagnosticSink diags;
  preprocess("#include <foo.h>\n", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.log().find("unsupported preprocessor directive"),
            std::string::npos);
}

TEST(Preprocessor, RecursiveDefineDiagnosed) {
  DiagnosticSink diags;
  auto pre = preprocess("#define A B\n#define B A\n", diags);
  ASSERT_FALSE(diags.has_errors());
  Lexer lexer("A", diags);
  auto tokens = expand_macros(lexer.lex_all(), pre.macros, diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.log().find("did not terminate"), std::string::npos);
}

TEST(Preprocessor, MacroInsideStringOfKernelNotExpanded) {
  // clc has no string literals in expressions, but macro names embedded in
  // identifiers must not expand: TILEx is not TILE.
  const char* src = R"(
#define TILE 16
__kernel void k(__global int* out) {
  int TILEx = 3;
  out[0] = TILEx + TILE;
}
)";
  EXPECT_EQ(clc_test::eval_scalar_kernel<std::int32_t>(src), 19);
}

}  // namespace
