#ifndef HPLREPRO_TESTS_CLC_EXEC_HELPER_HPP
#define HPLREPRO_TESTS_CLC_EXEC_HELPER_HPP

// Test harness: compile an OpenCL C snippet and run one kernel over a
// small NDRange against typed host vectors.

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "clsim/runtime.hpp"

namespace clc_test {

namespace clsim = hplrepro::clsim;

inline clsim::Device test_device() {
  return *clsim::Platform::get().device_by_name("Tesla");
}

/// Runs `kernel_name` from `source` over `global` items with a buffer of
/// `T` as the single argument (in/out).
template <typename T>
std::vector<T> run_kernel_1buf(const std::string& source,
                               const std::string& kernel_name,
                               std::vector<T> data, std::size_t global,
                               std::optional<std::size_t> local = {},
                               const std::string& build_options = "") {
  clsim::Context context(test_device());
  clsim::CommandQueue queue(context);
  clsim::Buffer buffer(context, data.size() * sizeof(T));
  queue.enqueue_write_buffer(buffer, data.data(), data.size() * sizeof(T));

  clsim::Program program(context, source);
  program.build(build_options);
  clsim::Kernel kernel(program, kernel_name);
  kernel.set_arg(0, buffer);

  std::optional<clsim::NDRange> local_range;
  if (local.has_value()) local_range = clsim::NDRange(*local);
  queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(global), local_range);

  queue.enqueue_read_buffer(buffer, data.data(), data.size() * sizeof(T));
  queue.finish();  // the queue is asynchronous; block before reading `data`
  return data;
}

/// Compiles `expr_source`, a full translation unit with a kernel named
/// "k" writing one result of type T to out[0], runs it with one work-item,
/// and returns the value. Used by expression-semantics tests.
template <typename T>
T eval_scalar_kernel(const std::string& source,
                     const std::string& build_options = "") {
  std::vector<T> out(1, T{});
  out = run_kernel_1buf<T>(source, "k", std::move(out), 1, {}, build_options);
  return out[0];
}

/// Wraps a C expression of type `type` into a one-item kernel.
inline std::string expr_kernel(const std::string& type,
                               const std::string& expr,
                               const std::string& prologue = "") {
  return "__kernel void k(__global " + type + "* out) {\n" + prologue +
         "  out[0] = " + expr + ";\n}\n";
}

}  // namespace clc_test

#endif  // HPLREPRO_TESTS_CLC_EXEC_HELPER_HPP
