// Compiler front-end diagnostics: bad programs must be rejected with an
// error that names the problem, mirroring a vendor OpenCL build log.

#include <gtest/gtest.h>

#include <string>

#include "clc/compile.hpp"

using hplrepro::clc::compile;
using hplrepro::clc::CompileError;

namespace {

/// Expects compilation to fail and the build log to mention `needle`.
void expect_error(const std::string& source, const std::string& needle) {
  try {
    compile(source);
    FAIL() << "expected a compile error mentioning '" << needle << "'";
  } catch (const CompileError& e) {
    EXPECT_NE(e.build_log().find(needle), std::string::npos)
        << "build log was:\n"
        << e.build_log();
  }
}

TEST(Diagnostics, UndeclaredIdentifier) {
  expect_error("__kernel void k(__global int* o) { o[0] = nope; }",
               "undeclared identifier 'nope'");
}

TEST(Diagnostics, UndeclaredFunction) {
  expect_error("__kernel void k(__global int* o) { o[0] = magic(1); }",
               "undeclared function 'magic'");
}

TEST(Diagnostics, WrongArgumentCount) {
  expect_error(R"(
int add(int a, int b) { return a + b; }
__kernel void k(__global int* o) { o[0] = add(1); }
)",
               "expects 2 argument(s)");
}

TEST(Diagnostics, RecursionRejected) {
  expect_error(R"(
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
__kernel void k(__global int* o) { o[0] = fib(10); }
)",
               "recursion");
}

TEST(Diagnostics, MutualRecursionRejected) {
  expect_error(R"(
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
__kernel void k(__global int* o) { o[0] = even(4); }
)",
               "");  // either a parse error (no prototypes) or recursion
}

TEST(Diagnostics, KernelMustReturnVoid) {
  expect_error("__kernel int k(__global int* o) { return 1; }",
               "kernel functions must return void");
}

TEST(Diagnostics, KernelsCannotBeCalled) {
  expect_error(R"(
__kernel void helper(__global int* o) { o[0] = 1; }
__kernel void k(__global int* o) { helper(o); }
)",
               "kernels cannot be called");
}

TEST(Diagnostics, AssignToConstRejected) {
  expect_error(R"(
__kernel void k(__global const float* in, __global float* out) {
  in[0] = 1.0f;
  out[0] = 0.0f;
}
)",
               "not assignable");
}

TEST(Diagnostics, ConstScalarNotAssignable) {
  expect_error(R"(
__kernel void k(__global int* o) {
  const int c = 3;
  c = 4;
  o[0] = c;
}
)",
               "not assignable");
}

TEST(Diagnostics, BreakOutsideLoop) {
  expect_error("__kernel void k(__global int* o) { break; }",
               "break outside of a loop");
}

TEST(Diagnostics, LocalArrayOutsideKernelRejected) {
  expect_error(R"(
void helper(void) {
  __local float scratch[16];
  scratch[0] = 1.0f;
}
__kernel void k(__global int* o) { helper(); o[0] = 1; }
)",
               "__local variables are only allowed in kernels");
}

TEST(Diagnostics, CrossAddressSpaceCastRejected) {
  expect_error(R"(
__kernel void k(__global float* g) {
  __local float l[4];
  __global float* p = (__global float*)l;
  p[0] = 1.0f;
  g[0] = 0.0f;
}
)",
               "cannot cast across address spaces");
}

TEST(Diagnostics, PointerScalarMismatch) {
  expect_error(R"(
__kernel void k(__global float* f) {
  int x = f;
  f[0] = (float)x;
}
)",
               "cannot initialise");
}

TEST(Diagnostics, SubscriptOnScalarRejected) {
  expect_error("__kernel void k(__global int* o) { int x = 0; o[0] = x[1]; }",
               "not a pointer or array");
}

TEST(Diagnostics, RedeclarationInSameScope) {
  expect_error(R"(
__kernel void k(__global int* o) {
  int x = 1;
  int x = 2;
  o[0] = x;
}
)",
               "redeclaration of 'x'");
}

TEST(Diagnostics, DuplicateFunction) {
  expect_error(R"(
void f(void) { }
void f(void) { }
__kernel void k(__global int* o) { o[0] = 1; }
)",
               "redefinition of function 'f'");
}

TEST(Diagnostics, ShadowingBuiltinRejected) {
  expect_error(R"(
float sqrt(float x) { return x; }
__kernel void k(__global float* o) { o[0] = sqrt(4.0f); }
)",
               "shadows an OpenCL builtin");
}

TEST(Diagnostics, SyntaxErrorHasLocation) {
  try {
    compile("__kernel void k(__global int* o) { o[0] = ; }");
    FAIL() << "expected a compile error";
  } catch (const CompileError& e) {
    // Line 1, around column 43.
    EXPECT_NE(e.build_log().find("1:"), std::string::npos) << e.build_log();
    EXPECT_NE(e.build_log().find("expected an expression"),
              std::string::npos)
        << e.build_log();
  }
}

TEST(Diagnostics, UnterminatedCommentReported) {
  expect_error("__kernel void k(__global int* o) { o[0] = 1; } /* oops",
               "unterminated block comment");
}

TEST(Diagnostics, ArrayExtentMustBePositive) {
  expect_error("__kernel void k(__global int* o) { int a[0]; o[0] = 1; }",
               "array extent must be nonzero");
}

TEST(Diagnostics, VoidVariableRejected) {
  expect_error("__kernel void k(__global int* o) { void v; o[0] = 1; }",
               "variable cannot have void type");
}

TEST(Diagnostics, MissingKernelNameInProgram) {
  // Valid program, but the kernel lookup must fail cleanly at the runtime
  // layer — covered in clsim tests; here we check the module side.
  auto result = compile("__kernel void real_name(__global int* o) { o[0] = 1; }");
  EXPECT_EQ(result.module.find("wrong_name"), nullptr);
  EXPECT_NE(result.module.find("real_name"), nullptr);
}

}  // namespace
