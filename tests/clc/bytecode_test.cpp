// Bytecode-level units: pointer encoding invariants (property sweep),
// opcode naming, and disassembly of representative programs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clc/bytecode.hpp"
#include "clc/compile.hpp"

using namespace hplrepro::clc;

namespace {

struct PtrCase {
  PtrSpace space;
  std::uint64_t buffer;
  std::uint64_t offset;
};

class PointerEncoding : public ::testing::TestWithParam<PtrCase> {};

TEST_P(PointerEncoding, RoundTripsAllFields) {
  const PtrCase& c = GetParam();
  const std::uint64_t p = make_pointer(c.space, c.buffer, c.offset);
  EXPECT_EQ(pointer_space(p), c.space);
  EXPECT_EQ(pointer_buffer(p), c.buffer);
  EXPECT_EQ(pointer_offset(p), c.offset);
}

TEST_P(PointerEncoding, ArithmeticOnlyTouchesOffset) {
  const PtrCase& c = GetParam();
  const std::uint64_t p = make_pointer(c.space, c.buffer, c.offset);
  const std::uint64_t q = pointer_add(p, 256);
  EXPECT_EQ(pointer_space(q), c.space);
  EXPECT_EQ(pointer_buffer(q), c.buffer);
  EXPECT_EQ(pointer_offset(q), c.offset + 256);
  // Negative strides work too.
  const std::uint64_t r = pointer_add(q, -256);
  EXPECT_EQ(pointer_offset(r), c.offset);
}

std::vector<PtrCase> pointer_cases() {
  std::vector<PtrCase> cases;
  for (const PtrSpace space : {PtrSpace::Private, PtrSpace::Global,
                               PtrSpace::Local, PtrSpace::Constant}) {
    for (const std::uint64_t buffer : {0ull, 1ull, 13ull, 16383ull}) {
      for (const std::uint64_t offset :
           {0ull, 4ull, 4096ull, (1ull << 40)}) {
        cases.push_back({space, buffer, offset});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PointerEncoding,
                         ::testing::ValuesIn(pointer_cases()));

TEST(Bytecode, EveryOpcodeHasAName) {
  for (int op = 0; op <= static_cast<int>(Op::WorkItemFn); ++op) {
    const std::string name = op_name(static_cast<Op>(op));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "opcode " << op;
  }
}

TEST(Bytecode, DisassemblyShowsControlFlowTargets) {
  auto result = compile(R"(
__kernel void k(__global int* o) {
  int s = 0;
  for (int i = 0; i < 4; i++) {
    s += i;
  }
  o[0] = s;
}
)");
  const std::string text = disassemble(*result.module.find("k"));
  EXPECT_NE(text.find("jz "), std::string::npos) << text;
  EXPECT_NE(text.find("jmp "), std::string::npos) << text;
  EXPECT_NE(text.find("add.i"), std::string::npos) << text;
  EXPECT_NE(text.find("sext.32"), std::string::npos) << text;
}

TEST(Bytecode, FunctionMetadataInDisassembly) {
  auto result = compile(R"(
float helper(float x) { return x + 1.0f; }
__kernel void k(__global float* o) {
  __local float tile[8];
  float priv[4];
  priv[0] = helper(o[0]);
  tile[0] = priv[0];
  barrier(CLK_LOCAL_MEM_FENCE);
  o[0] = tile[0];
}
)");
  const auto* kernel = result.module.find("k");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->local_bytes, 32u);
  EXPECT_EQ(kernel->private_bytes, 16u);
  EXPECT_TRUE(kernel->uses_barrier);

  const std::string text = disassemble(*kernel);
  EXPECT_NE(text.find("local=32B"), std::string::npos) << text;
  EXPECT_NE(text.find("call "), std::string::npos) << text;
  EXPECT_NE(text.find("barrier"), std::string::npos) << text;
  EXPECT_NE(text.find("ptr.local"), std::string::npos) << text;
  EXPECT_NE(text.find("ptr.private"), std::string::npos) << text;
}

TEST(Bytecode, ModuleLookupAndKernelNames) {
  auto result = compile(R"(
void helper(void) { }
__kernel void alpha(__global int* o) { o[0] = 1; }
__kernel void beta(__global int* o) { o[0] = 2; }
)");
  EXPECT_EQ(result.module.kernel_names(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_NE(result.module.find("helper"), nullptr);
  EXPECT_FALSE(result.module.find("helper")->is_kernel);
}

}  // namespace
