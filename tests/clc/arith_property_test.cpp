// Property-style parameterised sweep: for every binary operator and a grid
// of interesting operand values, the VM must compute exactly what native
// C++ computes for the same types. This pins the VM's integer-width,
// signedness and floating-point semantics across the whole operator set.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "clc/compile.hpp"
#include "exec_helper.hpp"
#include "support/prng.hpp"
#include "support/strings.hpp"

namespace {

// --- int32 operators -------------------------------------------------------------

struct IntCase {
  const char* op;
  std::int32_t lhs;
  std::int32_t rhs;
};

std::int32_t native_int_op(const std::string& op, std::int32_t a,
                           std::int32_t b) {
  if (op == "+") return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(a) + static_cast<std::uint32_t>(b));
  if (op == "-") return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(a) - static_cast<std::uint32_t>(b));
  if (op == "*") return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(a) * static_cast<std::uint32_t>(b));
  if (op == "/") return b == 0 ? 0 : (a == INT32_MIN && b == -1 ? a : a / b);
  if (op == "%") return b == 0 ? 0 : (a == INT32_MIN && b == -1 ? 0 : a % b);
  if (op == "&") return a & b;
  if (op == "|") return a | b;
  if (op == "^") return a ^ b;
  if (op == "<") return a < b ? 1 : 0;
  if (op == "<=") return a <= b ? 1 : 0;
  if (op == ">") return a > b ? 1 : 0;
  if (op == ">=") return a >= b ? 1 : 0;
  if (op == "==") return a == b ? 1 : 0;
  if (op == "!=") return a != b ? 1 : 0;
  ADD_FAILURE() << "unknown op " << op;
  return 0;
}

class IntBinaryOp : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntBinaryOp, MatchesNativeCxx) {
  const IntCase& c = GetParam();
  const std::string src =
      "__kernel void k(__global int* out) {\n"
      "  int a = " + std::to_string(c.lhs) + ";\n"
      "  int b = " + std::to_string(c.rhs) + ";\n"
      "  out[0] = a " + c.op + " b;\n}\n";
  EXPECT_EQ(clc_test::eval_scalar_kernel<std::int32_t>(src),
            native_int_op(c.op, c.lhs, c.rhs))
      << c.lhs << ' ' << c.op << ' ' << c.rhs;
}

std::vector<IntCase> int_cases() {
  const char* ops[] = {"+", "-", "*", "/", "%", "&", "|", "^",
                       "<", "<=", ">", ">=", "==", "!="};
  const std::int32_t values[] = {0,    1,     -1,        7,
                                 -13,  1024,  INT32_MAX, INT32_MIN,
                                 4096, -4096};
  std::vector<IntCase> cases;
  for (const char* op : ops) {
    for (const std::int32_t a : values) {
      for (const std::int32_t b : values) {
        cases.push_back({op, a, b});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntBinaryOp, ::testing::ValuesIn(int_cases()));

// --- uint32 operators --------------------------------------------------------------

struct UintCase {
  const char* op;
  std::uint32_t lhs;
  std::uint32_t rhs;
};

std::uint32_t native_uint_op(const std::string& op, std::uint32_t a,
                             std::uint32_t b) {
  if (op == "+") return a + b;
  if (op == "-") return a - b;
  if (op == "*") return a * b;
  if (op == "/") return b == 0 ? 0 : a / b;
  if (op == "%") return b == 0 ? 0 : a % b;
  if (op == "<") return a < b ? 1 : 0;
  if (op == ">") return a > b ? 1 : 0;
  ADD_FAILURE() << "unknown op " << op;
  return 0;
}

class UintBinaryOp : public ::testing::TestWithParam<UintCase> {};

TEST_P(UintBinaryOp, MatchesNativeCxx) {
  const UintCase& c = GetParam();
  const std::string src =
      "__kernel void k(__global uint* out) {\n"
      "  uint a = " + std::to_string(c.lhs) + "u;\n"
      "  uint b = " + std::to_string(c.rhs) + "u;\n"
      "  out[0] = (uint)(a " + c.op + " b);\n}\n";
  EXPECT_EQ(clc_test::eval_scalar_kernel<std::uint32_t>(src),
            native_uint_op(c.op, c.lhs, c.rhs))
      << c.lhs << ' ' << c.op << ' ' << c.rhs;
}

std::vector<UintCase> uint_cases() {
  const char* ops[] = {"+", "-", "*", "/", "%", "<", ">"};
  const std::uint32_t values[] = {0u, 1u, 2u, 0x7FFFFFFFu, 0x80000000u,
                                  0xFFFFFFFFu, 12345u};
  std::vector<UintCase> cases;
  for (const char* op : ops) {
    for (const std::uint32_t a : values) {
      for (const std::uint32_t b : values) {
        cases.push_back({op, a, b});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UintBinaryOp,
                         ::testing::ValuesIn(uint_cases()));

// --- float operators ------------------------------------------------------------------

struct FloatCase {
  const char* op;
  float lhs;
  float rhs;
};

float native_float_op(const std::string& op, float a, float b) {
  if (op == "+") return a + b;
  if (op == "-") return a - b;
  if (op == "*") return a * b;
  if (op == "/") return a / b;
  ADD_FAILURE() << "unknown op " << op;
  return 0;
}

class FloatBinaryOp : public ::testing::TestWithParam<FloatCase> {};

TEST_P(FloatBinaryOp, MatchesNativeCxx) {
  const FloatCase& c = GetParam();
  const std::string src =
      "__kernel void k(__global float* out) {\n"
      "  float a = " + hplrepro::float_literal(c.lhs) + ";\n"
      "  float b = " + hplrepro::float_literal(c.rhs) + ";\n"
      "  out[0] = a " + c.op + " b;\n}\n";
  const float got = clc_test::eval_scalar_kernel<float>(src);
  const float want = native_float_op(c.op, c.lhs, c.rhs);
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got));
  } else {
    EXPECT_EQ(got, want) << c.lhs << ' ' << c.op << ' ' << c.rhs;
  }
}

std::vector<FloatCase> float_cases() {
  const char* ops[] = {"+", "-", "*", "/"};
  const float values[] = {0.0f,    1.0f,   -1.5f,       3.14159f,
                          1e20f,   1e-20f, 16777216.0f, -65536.5f};
  std::vector<FloatCase> cases;
  for (const char* op : ops) {
    for (const float a : values) {
      for (const float b : values) {
        cases.push_back({op, a, b});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FloatBinaryOp,
                         ::testing::ValuesIn(float_cases()));

// --- Random constant-expression folding ------------------------------------------

// PRNG-driven property: a random expression built entirely from integer
// constants must evaluate to the same value with the optimizer on and off
// (the O0 VM is the oracle), and at O2 the whole tree must fold away to a
// constant push — division by zero, overflow and oversized shifts
// included, because the folder mirrors the VM's semantics exactly.

std::string random_const_expr(hplrepro::SplitMix64& rng, int depth) {
  static const char* kOps[] = {"+", "-", "*", "/", "%",
                               "&", "|", "^", "<<", ">>"};
  if (depth == 0 || rng.next_u64() % 4 == 0) {
    static const std::int64_t kSpecials[] = {
        0, 1, -1, 2, -2, 255, -128, 65536, (1ll << 31) - 1, -(1ll << 31),
        (1ll << 62)};
    std::int64_t v;
    if (rng.next_u64() % 2 == 0) {
      v = kSpecials[rng.next_u64() % (sizeof(kSpecials) / sizeof(*kSpecials))];
    } else {
      v = static_cast<std::int64_t>(rng.next_u64() % 2000001) - 1000000;
    }
    return "(" + std::to_string(v) + "L)";
  }
  const char* op = kOps[rng.next_u64() % (sizeof(kOps) / sizeof(*kOps))];
  const std::string lhs = random_const_expr(rng, depth - 1);
  // Keep shift amounts in a VM-defined but occasionally oversized range to
  // exercise the &63 masking path too.
  const std::string rhs =
      (op[0] == '<' || op[0] == '>') && op[1] == op[0]
          ? "(" + std::to_string(rng.next_u64() % 80) + "L)"
          : random_const_expr(rng, depth - 1);
  return "(" + lhs + " " + op + " " + rhs + ")";
}

std::size_t kernel_code_size(const std::string& source,
                             hplrepro::clc::OptLevel level) {
  hplrepro::clc::CompileOptions options;
  options.opt_level = level;
  const auto result = hplrepro::clc::compile(source, options);
  return result.module.find("k")->code.size();
}

TEST(ConstExprFoldProperty, RandomExpressionsFoldToTheO0Value) {
  hplrepro::SplitMix64 rng(0xF01DAB1Eull);
  for (int iter = 0; iter < 200; ++iter) {
    const int depth = 2 + static_cast<int>(rng.next_u64() % 3);
    const std::string src = "__kernel void k(__global long* out) {\n  out[0] = " +
                            random_const_expr(rng, depth) + ";\n}\n";

    const auto o0 = clc_test::eval_scalar_kernel<std::int64_t>(
        src, "-cl-opt-disable");
    const auto o2 = clc_test::eval_scalar_kernel<std::int64_t>(src, "-O2");
    EXPECT_EQ(o0, o2) << "iteration " << iter << "\n" << src;

    const std::size_t o0_size =
        kernel_code_size(src, hplrepro::clc::OptLevel::O0);
    const std::size_t o2_size =
        kernel_code_size(src, hplrepro::clc::OptLevel::O2);
    EXPECT_LT(o2_size, o0_size) << "iteration " << iter << "\n" << src;
    // Fully constant tree: whatever its size at O0, the optimized kernel
    // is just "push constant, store through the out pointer, return".
    EXPECT_LE(o2_size, 8u) << "iteration " << iter << "\n" << src;
  }
}

}  // namespace
