// Property-style parameterised sweep: for every binary operator and a grid
// of interesting operand values, the VM must compute exactly what native
// C++ computes for the same types. This pins the VM's integer-width,
// signedness and floating-point semantics across the whole operator set.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "exec_helper.hpp"
#include "support/strings.hpp"

namespace {

// --- int32 operators -------------------------------------------------------------

struct IntCase {
  const char* op;
  std::int32_t lhs;
  std::int32_t rhs;
};

std::int32_t native_int_op(const std::string& op, std::int32_t a,
                           std::int32_t b) {
  if (op == "+") return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(a) + static_cast<std::uint32_t>(b));
  if (op == "-") return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(a) - static_cast<std::uint32_t>(b));
  if (op == "*") return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(a) * static_cast<std::uint32_t>(b));
  if (op == "/") return b == 0 ? 0 : (a == INT32_MIN && b == -1 ? a : a / b);
  if (op == "%") return b == 0 ? 0 : (a == INT32_MIN && b == -1 ? 0 : a % b);
  if (op == "&") return a & b;
  if (op == "|") return a | b;
  if (op == "^") return a ^ b;
  if (op == "<") return a < b ? 1 : 0;
  if (op == "<=") return a <= b ? 1 : 0;
  if (op == ">") return a > b ? 1 : 0;
  if (op == ">=") return a >= b ? 1 : 0;
  if (op == "==") return a == b ? 1 : 0;
  if (op == "!=") return a != b ? 1 : 0;
  ADD_FAILURE() << "unknown op " << op;
  return 0;
}

class IntBinaryOp : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntBinaryOp, MatchesNativeCxx) {
  const IntCase& c = GetParam();
  const std::string src =
      "__kernel void k(__global int* out) {\n"
      "  int a = " + std::to_string(c.lhs) + ";\n"
      "  int b = " + std::to_string(c.rhs) + ";\n"
      "  out[0] = a " + c.op + " b;\n}\n";
  EXPECT_EQ(clc_test::eval_scalar_kernel<std::int32_t>(src),
            native_int_op(c.op, c.lhs, c.rhs))
      << c.lhs << ' ' << c.op << ' ' << c.rhs;
}

std::vector<IntCase> int_cases() {
  const char* ops[] = {"+", "-", "*", "/", "%", "&", "|", "^",
                       "<", "<=", ">", ">=", "==", "!="};
  const std::int32_t values[] = {0,    1,     -1,        7,
                                 -13,  1024,  INT32_MAX, INT32_MIN,
                                 4096, -4096};
  std::vector<IntCase> cases;
  for (const char* op : ops) {
    for (const std::int32_t a : values) {
      for (const std::int32_t b : values) {
        cases.push_back({op, a, b});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntBinaryOp, ::testing::ValuesIn(int_cases()));

// --- uint32 operators --------------------------------------------------------------

struct UintCase {
  const char* op;
  std::uint32_t lhs;
  std::uint32_t rhs;
};

std::uint32_t native_uint_op(const std::string& op, std::uint32_t a,
                             std::uint32_t b) {
  if (op == "+") return a + b;
  if (op == "-") return a - b;
  if (op == "*") return a * b;
  if (op == "/") return b == 0 ? 0 : a / b;
  if (op == "%") return b == 0 ? 0 : a % b;
  if (op == "<") return a < b ? 1 : 0;
  if (op == ">") return a > b ? 1 : 0;
  ADD_FAILURE() << "unknown op " << op;
  return 0;
}

class UintBinaryOp : public ::testing::TestWithParam<UintCase> {};

TEST_P(UintBinaryOp, MatchesNativeCxx) {
  const UintCase& c = GetParam();
  const std::string src =
      "__kernel void k(__global uint* out) {\n"
      "  uint a = " + std::to_string(c.lhs) + "u;\n"
      "  uint b = " + std::to_string(c.rhs) + "u;\n"
      "  out[0] = (uint)(a " + c.op + " b);\n}\n";
  EXPECT_EQ(clc_test::eval_scalar_kernel<std::uint32_t>(src),
            native_uint_op(c.op, c.lhs, c.rhs))
      << c.lhs << ' ' << c.op << ' ' << c.rhs;
}

std::vector<UintCase> uint_cases() {
  const char* ops[] = {"+", "-", "*", "/", "%", "<", ">"};
  const std::uint32_t values[] = {0u, 1u, 2u, 0x7FFFFFFFu, 0x80000000u,
                                  0xFFFFFFFFu, 12345u};
  std::vector<UintCase> cases;
  for (const char* op : ops) {
    for (const std::uint32_t a : values) {
      for (const std::uint32_t b : values) {
        cases.push_back({op, a, b});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UintBinaryOp,
                         ::testing::ValuesIn(uint_cases()));

// --- float operators ------------------------------------------------------------------

struct FloatCase {
  const char* op;
  float lhs;
  float rhs;
};

float native_float_op(const std::string& op, float a, float b) {
  if (op == "+") return a + b;
  if (op == "-") return a - b;
  if (op == "*") return a * b;
  if (op == "/") return a / b;
  ADD_FAILURE() << "unknown op " << op;
  return 0;
}

class FloatBinaryOp : public ::testing::TestWithParam<FloatCase> {};

TEST_P(FloatBinaryOp, MatchesNativeCxx) {
  const FloatCase& c = GetParam();
  const std::string src =
      "__kernel void k(__global float* out) {\n"
      "  float a = " + hplrepro::float_literal(c.lhs) + ";\n"
      "  float b = " + hplrepro::float_literal(c.rhs) + ";\n"
      "  out[0] = a " + c.op + " b;\n}\n";
  const float got = clc_test::eval_scalar_kernel<float>(src);
  const float want = native_float_op(c.op, c.lhs, c.rhs);
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got));
  } else {
    EXPECT_EQ(got, want) << c.lhs << ' ' << c.op << ' ' << c.rhs;
  }
}

std::vector<FloatCase> float_cases() {
  const char* ops[] = {"+", "-", "*", "/"};
  const float values[] = {0.0f,    1.0f,   -1.5f,       3.14159f,
                          1e20f,   1e-20f, 16777216.0f, -65536.5f};
  std::vector<FloatCase> cases;
  for (const char* op : ops) {
    for (const float a : values) {
      for (const float b : values) {
        cases.push_back({op, a, b});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FloatBinaryOp,
                         ::testing::ValuesIn(float_cases()));

}  // namespace
