// Ablation: HPL's transfer minimisation (paper §VI: HPL "analyze[s] the
// kernels it builds, the aim of that analysis currently being the
// minimization of the data transfers due to the execution of the
// kernels").
//
// Workload: Floyd-Warshall, n launches over the same matrix. With the
// coherence analysis the matrix is uploaded once and stays resident; the
// ablated variant forces the host round-trip a naive runtime would do
// (touch the host copy between launches -> re-upload + read-back each
// iteration).
//
// A second table compares the asynchronous pipeline against HPL_SYNC-style
// synchronous enqueues on the same workload: modeled time must be
// identical (drain-time timestamping); host wall-clock is reported so the
// perf trajectory records both modes.
//
// A third table runs the kernel-fusion ablation: the chained pattern
// programs of the scenario fusion axis, fused vs unfused, reporting launch
// and global-traffic deltas. With --fusion-json <path> the grades are
// written as an "hplrepro-fusion-v1" document (tools/validate_fusion.py).

#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "benchsuite/floyd.hpp"
#include "scenario/scenario.hpp"
#include "support/stopwatch.hpp"

namespace bs = hplrepro::benchsuite;
using namespace hplrepro::bench;

namespace {

using namespace HPL;

void floyd_pass(Array<float, 2> dist, Uint k) {
  Float alternative;
  alternative = dist[idx][k] + dist[k][idy];
  if_(alternative < dist[idx][idy]) {
    dist[idx][idy] = alternative;
  } endif_
}

struct Run {
  double transfer_sim = 0;
  std::uint64_t bytes_moved = 0;
  double total_modeled = 0;
  double wall_seconds = 0;  // real host time for the launch loop
};

Run run_floyd(std::size_t n, bool defeat_coherence) {
  const bs::FloydConfig config{.nodes = n};
  std::vector<float> graph = bs::floyd_make_graph(config);
  Array<float, 2> dist(n, n, graph.data());

  reset_profile();
  const auto before = profile();
  hplrepro::Stopwatch watch;
  for (std::size_t k = 0; k < n; ++k) {
    eval(floyd_pass).global(n, n).local(16, 16)(
        dist, static_cast<std::uint32_t>(k));
    if (defeat_coherence) {
      // What a runtime without access analysis effectively does: treat the
      // host copy as authoritative around every launch.
      dist.data();
    }
  }
  dist.data();
  const double wall = watch.seconds();
  const auto after = profile();

  Run run;
  run.transfer_sim = after.transfer_sim_seconds - before.transfer_sim_seconds;
  run.bytes_moved = (after.bytes_to_device - before.bytes_to_device) +
                    (after.bytes_to_host - before.bytes_to_host);
  run.total_modeled = (after.kernel_sim_seconds - before.kernel_sim_seconds) +
                      run.transfer_sim;
  run.wall_seconds = wall;
  return run;
}

/// Serializes the fusion-axis grades as "hplrepro-fusion-v1". The chained
/// corpus totals carry the headline number CI gates on: the fraction of
/// launches the rewriter eliminated.
bool write_fusion_json(const std::string& path,
                       const std::vector<hplrepro::scenario::FusionGrade>&
                           grades) {
  std::ofstream os(path);
  if (!os) return false;
  std::uint64_t chained_unfused = 0, chained_fused = 0;
  std::uint64_t chained_unfused_bytes = 0, chained_fused_bytes = 0;
  std::size_t failed = 0;
  os << "{\n  \"schema\": \"hplrepro-fusion-v1\",\n  \"programs\": [\n";
  for (std::size_t i = 0; i < grades.size(); ++i) {
    const auto& g = grades[i];
    if (g.chained) {
      chained_unfused += g.unfused_launches;
      chained_fused += g.fused_launches;
      chained_unfused_bytes += g.unfused_bytes;
      chained_fused_bytes += g.fused_bytes;
    }
    if (!g.passed()) ++failed;
    os << "    {\"name\": \"" << g.program << "\", \"chained\": "
       << (g.chained ? "true" : "false")
       << ", \"unfused_launches\": " << g.unfused_launches
       << ", \"fused_launches\": " << g.fused_launches
       << ", \"launches_saved\": " << g.launches_saved
       << ", \"unfused_bytes\": " << g.unfused_bytes
       << ", \"fused_bytes\": " << g.fused_bytes
       << ", \"unfused_sim_s\": " << g.unfused_sim_seconds
       << ", \"fused_sim_s\": " << g.fused_sim_seconds
       << ", \"bit_identical\": " << (g.bit_identical ? "true" : "false")
       << ", \"status\": \"" << (g.passed() ? "pass" : "fail") << "\"}"
       << (i + 1 < grades.size() ? ",\n" : "\n");
  }
  const double reduction =
      chained_unfused
          ? 1.0 - static_cast<double>(chained_fused) /
                      static_cast<double>(chained_unfused)
          : 0.0;
  os << "  ],\n  \"summary\": {\"programs\": " << grades.size()
     << ", \"failed\": " << failed
     << ", \"chained_unfused_launches\": " << chained_unfused
     << ", \"chained_fused_launches\": " << chained_fused
     << ", \"chained_unfused_bytes\": " << chained_unfused_bytes
     << ", \"chained_fused_bytes\": " << chained_fused_bytes
     << ", \"launch_reduction\": " << reduction
     << ", \"ok\": " << (failed == 0 ? "true" : "false") << "}\n}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json(argc, argv, "ablation_transfers");
  print_header("Ablation: transfer minimisation via kernel access analysis",
               "the design decision behind HPL's automatic buffer "
               "management (paper §VI)");

  hplrepro::Table table({"nodes", "variant", "bytes moved", "transfer (s)",
                         "kernels+transfers (s)", "slowdown"});

  for (const std::size_t n : {64u, 128u, 256u}) {
    const Run smart = run_floyd(n, false);
    const Run naive = run_floyd(n, true);
    table.add_row({std::to_string(n), "coherence analysis",
                   std::to_string(smart.bytes_moved),
                   fmt(smart.transfer_sim), fmt(smart.total_modeled), "1x"});
    table.add_row({std::to_string(n), "round-trip every launch",
                   std::to_string(naive.bytes_moved),
                   fmt(naive.transfer_sim), fmt(naive.total_modeled),
                   fmt_x(naive.total_modeled / smart.total_modeled)});
    json.add_row("coherence_n" + std::to_string(n),
                 {{"bytes_moved", static_cast<double>(smart.bytes_moved)},
                  {"transfer_sim_s", smart.transfer_sim},
                  {"modeled_s", smart.total_modeled}});
    json.add_row("roundtrip_n" + std::to_string(n),
                 {{"bytes_moved", static_cast<double>(naive.bytes_moved)},
                  {"transfer_sim_s", naive.transfer_sim},
                  {"modeled_s", naive.total_modeled}});
  }
  table.print(std::cout);

  std::cout << "\nWith access analysis the matrix crosses the bus twice "
               "(one upload, one final read-back) regardless of n; without "
               "it, traffic grows with the number of launches.\n";

  // --- Sync vs async pipeline ---------------------------------------------
  std::cout << "\nAsynchronous pipeline vs HPL_SYNC=1 (same workload). "
               "Modeled time must be identical by construction — drain-time "
               "timestamping makes the simulated timeline independent of "
               "host scheduling. Wall time is a wash here because each "
               "Floyd pass depends on the previous one; the pipeline pays "
               "off when independent work overlaps (see "
               "tests/hpl/async_pipeline_test.cpp):\n\n";
  hplrepro::Table pipe({"nodes", "mode", "modeled (s)", "host wall (s)",
                        "wall speedup"});
  for (const std::size_t n : {128u, 256u}) {
    hplrepro::clsim::set_async_enabled(false);
    const Run sync = run_floyd(n, false);
    hplrepro::clsim::set_async_enabled(true);
    const Run async = run_floyd(n, false);
    pipe.add_row({std::to_string(n), "sync", fmt(sync.total_modeled),
                  fmt(sync.wall_seconds), "1x"});
    pipe.add_row({std::to_string(n), "async", fmt(async.total_modeled),
                  fmt(async.wall_seconds),
                  fmt_x(sync.wall_seconds / async.wall_seconds)});
    json.add_row("sync_n" + std::to_string(n),
                 {{"modeled_s", sync.total_modeled},
                  {"wall_s", sync.wall_seconds}});
    json.add_row("async_n" + std::to_string(n),
                 {{"modeled_s", async.total_modeled},
                  {"wall_s", async.wall_seconds},
                  {"modeled_delta_s",
                   async.total_modeled - sync.total_modeled}});
  }
  pipe.print(std::cout);

  // --- Kernel fusion ablation -----------------------------------------------
  std::cout << "\nLazy-DAG kernel fusion (chained pattern programs, fused "
               "vs unfused). Every rewrite keeps the producer's store, so "
               "the fused run is bit-identical; what changes is launches "
               "and global-memory traffic:\n\n";
  const std::vector<hplrepro::scenario::FusionGrade> fusion =
      hplrepro::scenario::run_fusion_axis();
  hplrepro::Table ftable({"program", "launches", "saved", "global bytes",
                          "traffic", "modeled", "identical"});
  std::uint64_t chained_unfused = 0, chained_fused = 0;
  std::size_t fusion_failed = 0;
  for (const auto& g : fusion) {
    if (g.chained) {
      chained_unfused += g.unfused_launches;
      chained_fused += g.fused_launches;
    }
    if (!g.passed()) ++fusion_failed;
    ftable.add_row({g.program,
                    std::to_string(g.unfused_launches) + " -> " +
                        std::to_string(g.fused_launches),
                    std::to_string(g.launches_saved),
                    std::to_string(g.unfused_bytes) + " -> " +
                        std::to_string(g.fused_bytes),
                    fmt_x(static_cast<double>(g.unfused_bytes) /
                          static_cast<double>(g.fused_bytes ? g.fused_bytes
                                                            : 1)),
                    fmt(g.unfused_sim_seconds) + " -> " +
                        fmt(g.fused_sim_seconds),
                    g.bit_identical ? "yes" : "NO"});
    for (const auto& failure : g.failures) {
      std::cout << "FAIL fusion " << g.program << ": " << failure << "\n";
    }
  }
  ftable.print(std::cout);
  const double reduction =
      chained_unfused ? 1.0 - static_cast<double>(chained_fused) /
                                  static_cast<double>(chained_unfused)
                      : 0.0;
  // Greppable gate line for CI (the chained-corpus launch reduction).
  std::cout << "\nFUSION LAUNCH REDUCTION " << chained_unfused << " "
            << chained_fused << " "
            << static_cast<int>(reduction * 100.0 + 0.5) << "%\n";

  std::string fusion_json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--fusion-json") {
      fusion_json_path = argv[i + 1];
    }
  }
  if (!fusion_json_path.empty()) {
    if (!write_fusion_json(fusion_json_path, fusion)) {
      std::cerr << "ablation_transfers: cannot open " << fusion_json_path
                << " for writing\n";
      return 2;
    }
    std::cout << "wrote " << fusion_json_path << "\n";
  }
  return fusion_failed == 0 ? 0 : 1;
}
