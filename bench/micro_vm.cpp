// Google-benchmark microbenchmarks of the substrate itself: clc compile
// time, VM interpretation throughput, HPL capture/codegen cost, and warm
// eval dispatch overhead. These quantify the fixed costs that appear in
// the paper-figure measurements.
//
// Before the benchmarks run, main() prints two JSON tables:
//  - the optimizer scorecard (O0 vs O2 dynamic ops / traffic / sim time);
//  - the interpreter scorecard (O2 stack vs O2 threaded-register host
//    wall-clock per corpus kernel, with the geometric-mean speedup).
// With `--json <path>` the interpreter comparison is also written as an
// hplrepro-bench-v1 results file (BENCH_vm.json in CI).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "benchsuite/kernel_corpus.hpp"
#include "clsim/runtime.hpp"
#include "hpl/HPL.h"

namespace bs = hplrepro::benchsuite;
namespace clsim = hplrepro::clsim;

namespace {

const char* kSaxpySource = R"CLC(
__kernel void saxpy(__global float* y, __global const float* x, float a) {
  size_t i = get_global_id(0);
  y[i] = a * x[i] + y[i];
}
)CLC";

void BM_ClcCompileSaxpy(benchmark::State& state) {
  for (auto _ : state) {
    auto result = hplrepro::clc::compile(kSaxpySource);
    benchmark::DoNotOptimize(result.module.functions.data());
  }
}
BENCHMARK(BM_ClcCompileSaxpy);

void vm_saxpy_throughput(benchmark::State& state, const char* build_options) {
  const auto n = static_cast<std::size_t>(state.range(0));
  clsim::Context context(*clsim::Platform::get().device_by_name("Tesla"));
  clsim::CommandQueue queue(context);
  clsim::Buffer x(context, n * 4), y(context, n * 4);
  x.fill_zero();
  y.fill_zero();
  clsim::Program program(context, kSaxpySource);
  program.build(build_options);
  clsim::Kernel kernel(program, "saxpy");
  kernel.set_arg(0, y);
  kernel.set_arg(1, x);
  kernel.set_arg(2, 2.0f);

  for (auto _ : state) {
    queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n),
                                 clsim::NDRange(64));
    queue.finish();  // measure VM execution, not async enqueue cost
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}

void BM_VmSaxpyThroughputThreaded(benchmark::State& state) {
  vm_saxpy_throughput(state, "-cl-interp=threaded");
}
BENCHMARK(BM_VmSaxpyThroughputThreaded)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_VmSaxpyThroughputStack(benchmark::State& state) {
  vm_saxpy_throughput(state, "-cl-interp=stack");
}
BENCHMARK(BM_VmSaxpyThroughputStack)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void hpl_saxpy(HPL::Array<float, 1> y, HPL::Array<float, 1> x,
               HPL::Float a) {
  using namespace HPL;
  y[idx] = a * x[idx] + y[idx];
}

void BM_HplCaptureAndCodegen(benchmark::State& state) {
  HPL::Array<float, 1> x(64), y(64);
  for (auto _ : state) {
    HPL::purge_kernel_cache();
    HPL::eval(hpl_saxpy)(y, x, 1.0f);  // cold: capture + codegen + build
  }
}
BENCHMARK(BM_HplCaptureAndCodegen);

void BM_HplWarmEvalDispatch(benchmark::State& state) {
  HPL::Array<float, 1> x(64), y(64);
  HPL::eval(hpl_saxpy)(y, x, 1.0f);  // prime the cache
  for (auto _ : state) {
    HPL::eval(hpl_saxpy)(y, x, 1.0f);
  }
}
BENCHMARK(BM_HplWarmEvalDispatch);

void barrier_group_scheduling(benchmark::State& state,
                              const char* build_options) {
  // A barrier kernel forces the phase-based scheduler: measures the cost
  // of suspending/resuming every work-item of a group.
  const char* src = R"CLC(
__kernel void sync_heavy(__global float* data) {
  __local float s[64];
  size_t lid = get_local_id(0);
  s[lid] = data[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  s[lid] += s[(lid + 1) % 64];
  barrier(CLK_LOCAL_MEM_FENCE);
  data[get_global_id(0)] = s[lid];
}
)CLC";
  clsim::Context context(*clsim::Platform::get().device_by_name("Tesla"));
  clsim::CommandQueue queue(context);
  const std::size_t n = 1 << 12;
  clsim::Buffer data(context, n * 4);
  data.fill_zero();
  clsim::Program program(context, src);
  program.build(build_options);
  clsim::Kernel kernel(program, "sync_heavy");
  kernel.set_arg(0, data);
  for (auto _ : state) {
    queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n),
                                 clsim::NDRange(64));
    queue.finish();  // measure VM execution, not async enqueue cost
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}

void BM_BarrierGroupSchedulingThreaded(benchmark::State& state) {
  barrier_group_scheduling(state, "-cl-interp=threaded -cl-wg-loops=off");
}
BENCHMARK(BM_BarrierGroupSchedulingThreaded);

void BM_BarrierGroupSchedulingThreadedWgLoops(benchmark::State& state) {
  // Work-group compilation (default under threaded): barrier regions run
  // as work-item loops on one activation instead of per-item resumes.
  barrier_group_scheduling(state, "-cl-interp=threaded");
}
BENCHMARK(BM_BarrierGroupSchedulingThreadedWgLoops);

void BM_BarrierGroupSchedulingStack(benchmark::State& state) {
  barrier_group_scheduling(state, "-cl-interp=stack");
}
BENCHMARK(BM_BarrierGroupSchedulingStack);

void print_opt_pipeline_table() {
  const clsim::Device device =
      *clsim::Platform::get().device_by_name("Tesla");
  std::printf("{\n  \"optimizer_pipeline\": [\n");
  const auto& names = bs::corpus_kernel_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const bs::CorpusRun o0 = bs::run_corpus_kernel(names[i], device, "-O0");
    const bs::CorpusRun o2 = bs::run_corpus_kernel(names[i], device, "-O2");
    const auto gbytes = [](const bs::CorpusRun& r) {
      return r.stats.global_load_bytes + r.stats.global_store_bytes;
    };
    std::printf(
        "    {\"kernel\": \"%s\",\n"
        "     \"o0\": {\"dynamic_ops\": %llu, \"global_bytes\": %llu, "
        "\"sim_seconds\": %.9f, \"static_instrs\": %zu},\n"
        "     \"o2\": {\"dynamic_ops\": %llu, \"global_bytes\": %llu, "
        "\"sim_seconds\": %.9f, \"static_instrs\": %zu, "
        "\"fused_ops\": %llu},\n"
        "     \"dynamic_op_reduction\": %.4f}%s\n",
        names[i].c_str(),
        static_cast<unsigned long long>(o0.stats.total_ops()),
        static_cast<unsigned long long>(gbytes(o0)), o0.kernel_sim_seconds,
        o0.static_instrs,
        static_cast<unsigned long long>(o2.stats.total_ops()),
        static_cast<unsigned long long>(gbytes(o2)), o2.kernel_sim_seconds,
        o2.static_instrs,
        static_cast<unsigned long long>(o2.stats.fused_ops),
        1.0 - static_cast<double>(o2.stats.total_ops()) /
                  static_cast<double>(o0.stats.total_ops()),
        i + 1 < names.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

// Compares the interpreter configurations at O2 on every corpus kernel
// plus the barrier-heavy extras: host wall-clock inside the VM (best of
// kRepeats to shed scheduler noise) for the stack interpreter, the
// register interpreter with work-group compilation off, and the default
// threaded+wg-loops configuration. Cross-checks that all three produced
// bit-identical outputs and identical dynamic op totals — the lowering
// and work-group-compilation contracts. Besides the overall geomeans, a
// "geomean_barrier" row reports the wg-loops speedup over the dedicated
// barrier-kernel rows (barrier_kernel_names()), whose geometries make
// group scheduling — what region looping replaces — the dominant cost.
void print_interp_table(hplrepro::bench::JsonReporter& json) {
  constexpr int kRepeats = 9;
  const clsim::Device device =
      *clsim::Platform::get().device_by_name("Tesla");
  std::vector<std::string> names = bs::corpus_kernel_names();
  for (const std::string& name : bs::barrier_kernel_names()) {
    names.push_back(name);
  }
  std::printf("{\n  \"interpreter\": [\n");
  double log_sum = 0, log_sum_wg = 0, log_sum_barrier = 0;
  std::size_t barrier_rows = 0;
  const std::size_t corpus_rows = bs::corpus_kernel_names().size();
  for (std::size_t i = 0; i < names.size(); ++i) {
    double stack_wall = 0, threaded_wall = 0, wg_wall = 0;
    bool identical = true;
    for (int r = 0; r < kRepeats; ++r) {
      const bs::CorpusRun s =
          bs::run_corpus_kernel(names[i], device, "-O2 -cl-interp=stack");
      const bs::CorpusRun t = bs::run_corpus_kernel(
          names[i], device, "-O2 -cl-interp=threaded -cl-wg-loops=off");
      const bs::CorpusRun w =
          bs::run_corpus_kernel(names[i], device, "-O2 -cl-interp=threaded");
      identical = identical && s.outputs == t.outputs &&
                  s.outputs == w.outputs &&
                  s.stats.total_ops() == t.stats.total_ops() &&
                  s.stats.total_ops() == w.stats.total_ops() &&
                  s.stats.barriers_executed == w.stats.barriers_executed;
      stack_wall = r == 0 ? s.kernel_wall_seconds
                          : std::min(stack_wall, s.kernel_wall_seconds);
      threaded_wall = r == 0 ? t.kernel_wall_seconds
                             : std::min(threaded_wall, t.kernel_wall_seconds);
      wg_wall = r == 0 ? w.kernel_wall_seconds
                       : std::min(wg_wall, w.kernel_wall_seconds);
    }
    const double speedup = stack_wall / threaded_wall;
    const double wg_speedup = threaded_wall / wg_wall;
    log_sum += std::log(speedup);
    log_sum_wg += std::log(stack_wall / wg_wall);
    if (i >= corpus_rows) {  // the barrier_kernel_names() rows
      log_sum_barrier += std::log(wg_speedup);
      ++barrier_rows;
    }
    std::printf(
        "    {\"kernel\": \"%s\", \"stack_wall_s\": %.9f, "
        "\"threaded_wall_s\": %.9f, \"wg_wall_s\": %.9f, "
        "\"speedup\": %.3f, \"wg_speedup\": %.3f, "
        "\"identical\": %s},\n",
        names[i].c_str(), stack_wall, threaded_wall, wg_wall, speedup,
        wg_speedup, identical ? "true" : "false");
    json.add_row(names[i], {{"stack_wall_s", stack_wall},
                            {"threaded_wall_s", threaded_wall},
                            {"wg_wall_s", wg_wall},
                            {"speedup", speedup},
                            {"wg_speedup", wg_speedup}});
  }
  const double geomean =
      std::exp(log_sum / static_cast<double>(names.size()));
  const double geomean_wg =
      std::exp(log_sum_wg / static_cast<double>(names.size()));
  const double geomean_barrier =
      barrier_rows == 0
          ? 1.0
          : std::exp(log_sum_barrier / static_cast<double>(barrier_rows));
  std::printf(
      "    {\"kernel\": \"geomean\", \"speedup\": %.3f},\n"
      "    {\"kernel\": \"geomean_wg\", \"speedup\": %.3f},\n"
      "    {\"kernel\": \"geomean_barrier\", \"wg_speedup\": %.3f}\n  ]\n}\n",
      geomean, geomean_wg, geomean_barrier);
  json.add_row("geomean", {{"speedup", geomean}});
  json.add_row("geomean_wg", {{"speedup", geomean_wg}});
  json.add_row("geomean_barrier", {{"wg_speedup", geomean_barrier}});
}

}  // namespace

int main(int argc, char** argv) {
  hplrepro::bench::JsonReporter json(argc, argv, "micro_vm");
  print_opt_pipeline_table();
  print_interp_table(json);
  // google-benchmark rejects flags it does not know, so hide `--json
  // <path>` and `--metrics <path>` (consumed by JsonReporter above) from it.
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--json" || arg == "--metrics") && i + 1 < argc) {
      ++i;
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
