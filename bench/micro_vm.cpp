// Google-benchmark microbenchmarks of the substrate itself: clc compile
// time, VM interpretation throughput, HPL capture/codegen cost, and warm
// eval dispatch overhead. These quantify the fixed costs that appear in
// the paper-figure measurements.
//
// Before the benchmarks run, main() prints a JSON table comparing O0 and
// O2 builds of every benchsuite kernel: dynamic op counts, global memory
// traffic and simulated time — the optimizer's scorecard.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "benchsuite/kernel_corpus.hpp"
#include "clsim/runtime.hpp"
#include "hpl/HPL.h"

namespace bs = hplrepro::benchsuite;
namespace clsim = hplrepro::clsim;

namespace {

const char* kSaxpySource = R"CLC(
__kernel void saxpy(__global float* y, __global const float* x, float a) {
  size_t i = get_global_id(0);
  y[i] = a * x[i] + y[i];
}
)CLC";

void BM_ClcCompileSaxpy(benchmark::State& state) {
  for (auto _ : state) {
    auto result = hplrepro::clc::compile(kSaxpySource);
    benchmark::DoNotOptimize(result.module.functions.data());
  }
}
BENCHMARK(BM_ClcCompileSaxpy);

void BM_VmSaxpyThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  clsim::Context context(*clsim::Platform::get().device_by_name("Tesla"));
  clsim::CommandQueue queue(context);
  clsim::Buffer x(context, n * 4), y(context, n * 4);
  x.fill_zero();
  y.fill_zero();
  clsim::Program program(context, kSaxpySource);
  program.build();
  clsim::Kernel kernel(program, "saxpy");
  kernel.set_arg(0, y);
  kernel.set_arg(1, x);
  kernel.set_arg(2, 2.0f);

  for (auto _ : state) {
    queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n),
                                 clsim::NDRange(64));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_VmSaxpyThroughput)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void hpl_saxpy(HPL::Array<float, 1> y, HPL::Array<float, 1> x,
               HPL::Float a) {
  using namespace HPL;
  y[idx] = a * x[idx] + y[idx];
}

void BM_HplCaptureAndCodegen(benchmark::State& state) {
  HPL::Array<float, 1> x(64), y(64);
  for (auto _ : state) {
    HPL::purge_kernel_cache();
    HPL::eval(hpl_saxpy)(y, x, 1.0f);  // cold: capture + codegen + build
  }
}
BENCHMARK(BM_HplCaptureAndCodegen);

void BM_HplWarmEvalDispatch(benchmark::State& state) {
  HPL::Array<float, 1> x(64), y(64);
  HPL::eval(hpl_saxpy)(y, x, 1.0f);  // prime the cache
  for (auto _ : state) {
    HPL::eval(hpl_saxpy)(y, x, 1.0f);
  }
}
BENCHMARK(BM_HplWarmEvalDispatch);

void BM_BarrierGroupScheduling(benchmark::State& state) {
  // A barrier kernel forces the phase-based scheduler: measures the cost
  // of suspending/resuming every work-item of a group.
  const char* src = R"CLC(
__kernel void sync_heavy(__global float* data) {
  __local float s[64];
  size_t lid = get_local_id(0);
  s[lid] = data[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  s[lid] += s[(lid + 1) % 64];
  barrier(CLK_LOCAL_MEM_FENCE);
  data[get_global_id(0)] = s[lid];
}
)CLC";
  clsim::Context context(*clsim::Platform::get().device_by_name("Tesla"));
  clsim::CommandQueue queue(context);
  const std::size_t n = 1 << 12;
  clsim::Buffer data(context, n * 4);
  data.fill_zero();
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "sync_heavy");
  kernel.set_arg(0, data);
  for (auto _ : state) {
    queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n),
                                 clsim::NDRange(64));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_BarrierGroupScheduling);

void print_opt_pipeline_table() {
  const clsim::Device device =
      *clsim::Platform::get().device_by_name("Tesla");
  std::printf("{\n  \"optimizer_pipeline\": [\n");
  const auto& names = bs::corpus_kernel_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const bs::CorpusRun o0 = bs::run_corpus_kernel(names[i], device, "-O0");
    const bs::CorpusRun o2 = bs::run_corpus_kernel(names[i], device, "-O2");
    const auto gbytes = [](const bs::CorpusRun& r) {
      return r.stats.global_load_bytes + r.stats.global_store_bytes;
    };
    std::printf(
        "    {\"kernel\": \"%s\",\n"
        "     \"o0\": {\"dynamic_ops\": %llu, \"global_bytes\": %llu, "
        "\"sim_seconds\": %.9f, \"static_instrs\": %zu},\n"
        "     \"o2\": {\"dynamic_ops\": %llu, \"global_bytes\": %llu, "
        "\"sim_seconds\": %.9f, \"static_instrs\": %zu, "
        "\"fused_ops\": %llu},\n"
        "     \"dynamic_op_reduction\": %.4f}%s\n",
        names[i].c_str(),
        static_cast<unsigned long long>(o0.stats.total_ops()),
        static_cast<unsigned long long>(gbytes(o0)), o0.kernel_sim_seconds,
        o0.static_instrs,
        static_cast<unsigned long long>(o2.stats.total_ops()),
        static_cast<unsigned long long>(gbytes(o2)), o2.kernel_sim_seconds,
        o2.static_instrs,
        static_cast<unsigned long long>(o2.stats.fused_ops),
        1.0 - static_cast<double>(o2.stats.total_ops()) /
                  static_cast<double>(o0.stats.total_ops()),
        i + 1 < names.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_opt_pipeline_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
