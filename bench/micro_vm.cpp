// Google-benchmark microbenchmarks of the substrate itself: clc compile
// time, VM interpretation throughput, HPL capture/codegen cost, and warm
// eval dispatch overhead. These quantify the fixed costs that appear in
// the paper-figure measurements.

#include <benchmark/benchmark.h>

#include "clsim/runtime.hpp"
#include "hpl/HPL.h"

namespace clsim = hplrepro::clsim;

namespace {

const char* kSaxpySource = R"CLC(
__kernel void saxpy(__global float* y, __global const float* x, float a) {
  size_t i = get_global_id(0);
  y[i] = a * x[i] + y[i];
}
)CLC";

void BM_ClcCompileSaxpy(benchmark::State& state) {
  for (auto _ : state) {
    auto result = hplrepro::clc::compile(kSaxpySource);
    benchmark::DoNotOptimize(result.module.functions.data());
  }
}
BENCHMARK(BM_ClcCompileSaxpy);

void BM_VmSaxpyThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  clsim::Context context(*clsim::Platform::get().device_by_name("Tesla"));
  clsim::CommandQueue queue(context);
  clsim::Buffer x(context, n * 4), y(context, n * 4);
  x.fill_zero();
  y.fill_zero();
  clsim::Program program(context, kSaxpySource);
  program.build();
  clsim::Kernel kernel(program, "saxpy");
  kernel.set_arg(0, y);
  kernel.set_arg(1, x);
  kernel.set_arg(2, 2.0f);

  for (auto _ : state) {
    queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n),
                                 clsim::NDRange(64));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_VmSaxpyThroughput)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void hpl_saxpy(HPL::Array<float, 1> y, HPL::Array<float, 1> x,
               HPL::Float a) {
  using namespace HPL;
  y[idx] = a * x[idx] + y[idx];
}

void BM_HplCaptureAndCodegen(benchmark::State& state) {
  HPL::Array<float, 1> x(64), y(64);
  for (auto _ : state) {
    HPL::purge_kernel_cache();
    HPL::eval(hpl_saxpy)(y, x, 1.0f);  // cold: capture + codegen + build
  }
}
BENCHMARK(BM_HplCaptureAndCodegen);

void BM_HplWarmEvalDispatch(benchmark::State& state) {
  HPL::Array<float, 1> x(64), y(64);
  HPL::eval(hpl_saxpy)(y, x, 1.0f);  // prime the cache
  for (auto _ : state) {
    HPL::eval(hpl_saxpy)(y, x, 1.0f);
  }
}
BENCHMARK(BM_HplWarmEvalDispatch);

void BM_BarrierGroupScheduling(benchmark::State& state) {
  // A barrier kernel forces the phase-based scheduler: measures the cost
  // of suspending/resuming every work-item of a group.
  const char* src = R"CLC(
__kernel void sync_heavy(__global float* data) {
  __local float s[64];
  size_t lid = get_local_id(0);
  s[lid] = data[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  s[lid] += s[(lid + 1) % 64];
  barrier(CLK_LOCAL_MEM_FENCE);
  data[get_global_id(0)] = s[lid];
}
)CLC";
  clsim::Context context(*clsim::Platform::get().device_by_name("Tesla"));
  clsim::CommandQueue queue(context);
  const std::size_t n = 1 << 12;
  clsim::Buffer data(context, n * 4);
  data.fill_zero();
  clsim::Program program(context, src);
  program.build();
  clsim::Kernel kernel(program, "sync_heavy");
  kernel.set_arg(0, data);
  for (auto _ : state) {
    queue.enqueue_ndrange_kernel(kernel, clsim::NDRange(n),
                                 clsim::NDRange(64));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_BarrierGroupScheduling);

}  // namespace

BENCHMARK_MAIN();
