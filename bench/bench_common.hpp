#ifndef HPLREPRO_BENCH_COMMON_HPP
#define HPLREPRO_BENCH_COMMON_HPP

/// \file bench_common.hpp
/// Helpers shared by the paper-figure benchmark binaries, including the
/// `--json <path>` machine-readable results writer every fig* binary
/// supports (the BENCH_*.json perf-trajectory format).

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "benchsuite/common.hpp"
#include "clsim/runtime.hpp"
#include "hpl/HPL.h"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace hplrepro::bench {

inline clsim::Device tesla_device() {
  return *clsim::Platform::get().device_by_name("Tesla");
}
inline clsim::Device quadro_device() {
  return *clsim::Platform::get().device_by_name("Quadro");
}
inline clsim::Device cpu_device() {
  return *clsim::Platform::get().device_by_type(clsim::DeviceType::Cpu);
}

inline HPL::Device hpl_tesla() { return *HPL::Device::by_name("Tesla"); }
inline HPL::Device hpl_quadro() { return *HPL::Device::by_name("Quadro"); }

inline std::string fmt(double v, int digits = 4) {
  return format_double(v, digits);
}

inline std::string fmt_pct(double v) { return format_double(v, 3) + "%"; }

inline std::string fmt_x(double v) { return format_double(v, 3) + "x"; }

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref << ")\n\n";
}

/// Collects named rows of named numeric metrics and, when the binary was
/// invoked with `--json <path>`, writes them as a BENCH_*.json-style
/// results file on destruction. Alongside the per-row metrics it embeds
/// the final ProfileSnapshot and the per-kernel profiler registry, so a
/// single run yields the per-phase decomposition machine-readably.
///
/// Every binary using it also understands `--metrics <path>`: the
/// quantitative metrics layer (support/metrics.hpp) is switched on at
/// startup and its "hplrepro-metrics-v1" JSON is written on destruction,
/// equivalent to running with HPL_METRICS=<path>.
class JsonReporter {
public:
  JsonReporter(int argc, char** argv, std::string benchmark)
      : benchmark_(std::move(benchmark)) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
      if (std::string(argv[i]) == "--metrics") metrics_path_ = argv[i + 1];
    }
    if (!metrics_path_.empty()) hplrepro::metrics::set_enabled(true);
  }

  bool requested() const { return !path_.empty(); }

  void add_row(
      const std::string& name,
      std::vector<std::pair<std::string, double>> metrics) {
    rows_.push_back({name, std::move(metrics)});
  }

  ~JsonReporter() {
    if (!metrics_path_.empty()) {
      if (HPL::metrics_write(metrics_path_)) {
        std::cout << "\n[metrics written to " << metrics_path_ << "]\n";
      } else {
        std::cerr << "bench: cannot open " << metrics_path_
                  << " for writing\n";
      }
    }
    if (path_.empty()) return;
    std::ofstream os(path_);
    if (!os) {
      std::cerr << "bench: cannot open " << path_ << " for writing\n";
      return;
    }
    os << "{\n  \"schema\": \"hplrepro-bench-v1\",\n"
       << "  \"benchmark\": \"" << escape(benchmark_) << "\",\n"
       << "  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << "    {\"name\": \"" << escape(rows_[r].name)
         << "\", \"metrics\": {";
      const auto& metrics = rows_[r].metrics;
      for (std::size_t m = 0; m < metrics.size(); ++m) {
        if (m != 0) os << ", ";
        os << "\"" << escape(metrics[m].first)
           << "\": " << format_double(metrics[m].second, 9);
      }
      os << "}}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    const HPL::ProfileSnapshot p = HPL::profile();
    os << "  \"profile\": {"
       << "\"host_seconds\": " << format_double(p.host_seconds, 9)
       << ", \"kernel_sim_seconds\": "
       << format_double(p.kernel_sim_seconds, 9)
       << ", \"transfer_sim_seconds\": "
       << format_double(p.transfer_sim_seconds, 9)
       << ", \"kernel_launches\": " << p.kernel_launches
       << ", \"kernels_built\": " << p.kernels_built
       << ", \"kernel_cache_hits\": " << p.kernel_cache_hits
       << ", \"kernel_cache_misses\": " << p.kernel_cache_misses
       << ", \"bytes_to_device\": " << p.bytes_to_device
       << ", \"bytes_to_host\": " << p.bytes_to_host << "},\n";

    const auto kernels = HPL::kernel_profiles();
    os << "  \"kernels\": [\n";
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      const auto& kp = kernels[k];
      os << "    {\"kernel\": \"" << escape(kp.kernel) << "\", \"device\": \""
         << escape(kp.device) << "\", \"launches\": " << kp.launches
         << ", \"cache_hits\": " << kp.cache_hits
         << ", \"builds\": " << kp.builds
         << ", \"compute_s\": " << format_double(kp.sim.compute_s, 9)
         << ", \"global_mem_s\": " << format_double(kp.sim.global_mem_s, 9)
         << ", \"local_mem_s\": " << format_double(kp.sim.local_mem_s, 9)
         << ", \"barrier_s\": " << format_double(kp.sim.barrier_s, 9)
         << ", \"launch_s\": " << format_double(kp.sim.launch_s, 9)
         << ", \"total_s\": " << format_double(kp.sim.total_s, 9)
         << ", \"global_bytes\": " << kp.global_bytes
         << ", \"fused_ratio\": " << format_double(kp.fused_ratio(), 9)
         << "}" << (k + 1 < kernels.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\n[json results written to " << path_ << "]\n";
  }

private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out += c;
    }
    return out;
  }

  std::string benchmark_;
  std::string path_;
  std::string metrics_path_;
  std::vector<Row> rows_;
};

}  // namespace hplrepro::bench

#endif  // HPLREPRO_BENCH_COMMON_HPP
