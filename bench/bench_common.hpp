#ifndef HPLREPRO_BENCH_COMMON_HPP
#define HPLREPRO_BENCH_COMMON_HPP

/// \file bench_common.hpp
/// Helpers shared by the paper-figure benchmark binaries.

#include <iostream>
#include <string>

#include "benchsuite/common.hpp"
#include "clsim/runtime.hpp"
#include "hpl/HPL.h"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace hplrepro::bench {

inline clsim::Device tesla_device() {
  return *clsim::Platform::get().device_by_name("Tesla");
}
inline clsim::Device quadro_device() {
  return *clsim::Platform::get().device_by_name("Quadro");
}
inline clsim::Device cpu_device() {
  return *clsim::Platform::get().device_by_type(clsim::DeviceType::Cpu);
}

inline HPL::Device hpl_tesla() { return *HPL::Device::by_name("Tesla"); }
inline HPL::Device hpl_quadro() { return *HPL::Device::by_name("Quadro"); }

inline std::string fmt(double v, int digits = 4) {
  return format_double(v, digits);
}

inline std::string fmt_pct(double v) { return format_double(v, 3) + "%"; }

inline std::string fmt_x(double v) { return format_double(v, 3) + "x"; }

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref << ")\n\n";
}

}  // namespace hplrepro::bench

#endif  // HPLREPRO_BENCH_COMMON_HPP
