// Reproduces paper Figure 6: speedups of the GPU executions of the OpenCL
// and HPL versions of EP over the serial CPU execution, for the problem
// classes W, A, B and C.
//
// Each class is measured cold (kernel cache purged), so HPL pays capture +
// code generation + compilation on top of OpenCL's compilation, exactly as
// in the paper: "the generation of the backend code (in the case of HPL)
// and the compilation and execution of the kernel" (§V-B). The paper's
// observation — HPL's overhead is largest at the smallest class (20.5% at
// W) and fades as the problem grows (1.1% at C) — is the shape this
// benchmark reproduces; the absolute percentages are larger here because
// the simulated kernel times are scaled down while the (real) host-side
// overhead is not (see EXPERIMENTS.md).

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "benchsuite/ep.hpp"

namespace bs = hplrepro::benchsuite;
using namespace hplrepro::bench;

namespace {

// One tiny throwaway run so process-level one-time costs (allocator and
// runtime initialisation) do not pollute the first measured class.
void warm_up_process() {
  bs::EpConfig tiny;
  tiny.pairs = 1 << 8;
  tiny.chunk = 16;
  tiny.local_size = 16;
  (void)bs::ep_opencl(tiny, cpu_device());
  (void)bs::ep_hpl(tiny, hpl_tesla());
  HPL::purge_kernel_cache();
}

}  // namespace

int main(int argc, char** argv) {
  hplrepro::bench::JsonReporter reporter(argc, argv, "fig6_ep_problem_sizes");
  warm_up_process();
  print_header("Figure 6: EP speedup over CPU for problem sizes W, A, B, C",
               "paper Fig. 6; paper HPL-vs-OpenCL gaps: W 20.5%, A 5.7%, "
               "B 2.3%, C 1.1%");

  hplrepro::Table table({"class", "pairs", "CPU serial (s)", "OpenCL (s)",
                         "HPL (s)", "OpenCL speedup", "HPL speedup",
                         "HPL vs OpenCL", "paper gap"});

  const char* paper_gap[] = {"20.5%", "5.7%", "2.3%", "1.1%"};
  const char classes[] = {'W', 'A', 'B', 'C'};
  for (std::size_t i = 0; i < 4; ++i) {
    const bs::EpConfig config = bs::ep_class(classes[i]);

    const auto cpu = bs::ep_opencl(config, cpu_device());

    // Median of three cold runs for each GPU variant: the one-time
    // capture/codegen cost being measured is hundreds of microseconds, so
    // single runs are noisy.
    auto median3 = [](double a, double b, double c) {
      return std::max(std::min(a, b), std::min(std::max(a, b), c));
    };
    double ocl_runs[3], hpl_runs[3];
    for (int r = 0; r < 3; ++r) {
      ocl_runs[r] =
          bs::ep_opencl(config, tesla_device()).timings.modeled_no_transfer();
      HPL::purge_kernel_cache();  // cold: include capture+codegen+compile
      hpl_runs[r] =
          bs::ep_hpl(config, hpl_tesla()).timings.modeled_no_transfer();
    }

    const double t_cpu = cpu.timings.modeled_no_transfer();
    const double t_ocl = median3(ocl_runs[0], ocl_runs[1], ocl_runs[2]);
    const double t_hpl = median3(hpl_runs[0], hpl_runs[1], hpl_runs[2]);

    table.add_row({std::string(1, classes[i]), std::to_string(config.pairs),
                   fmt(t_cpu), fmt(t_ocl), fmt(t_hpl), fmt_x(t_cpu / t_ocl),
                   fmt_x(t_cpu / t_hpl),
                   fmt_pct((t_hpl / t_ocl - 1.0) * 100.0), paper_gap[i]});
    reporter.add_row(
        "EP class " + std::string(1, classes[i]),
        {{"pairs", static_cast<double>(config.pairs)},
         {"cpu_seconds", t_cpu},
         {"opencl_seconds", t_ocl},
         {"hpl_seconds", t_hpl},
         {"opencl_speedup", t_cpu / t_ocl},
         {"hpl_speedup", t_cpu / t_hpl},
         {"hpl_vs_opencl_pct", (t_hpl / t_ocl - 1.0) * 100.0}});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: speedups grow with class; the HPL gap "
               "shrinks monotonically as the kernel time amortises the "
               "one-time capture/codegen cost.\n";
  return 0;
}
