// Reproduces paper Figure 8: slowdown of HPL with respect to OpenCL for
// the five benchmarks on the Tesla C2050, transfers excluded — plus the
// paper's side observation that for matrix transpose, including transfers
// shrinks the relative overhead (3.47% -> 0.41% in the paper).
//
// Each benchmark launches its kernel(s) repeatedly (the paper's stated
// common case: kernels are reused many times, and HPL caches the generated
// binary), with the one-time HPL capture/codegen and the OpenCL program
// build both included in the measurement.

#include <iostream>

#include "bench_common.hpp"
#include "benchsuite/ep.hpp"
#include "benchsuite/floyd.hpp"
#include "benchsuite/reduction.hpp"
#include "benchsuite/spmv.hpp"
#include "benchsuite/transpose.hpp"

namespace bs = hplrepro::benchsuite;
using namespace hplrepro::bench;

namespace {

struct Row {
  std::string name;
  bs::Timings opencl;
  bs::Timings hpl;
  std::string paper_note;
};

}  // namespace

namespace {

void warm_up_process() {
  bs::EpConfig tiny;
  tiny.pairs = 1 << 8;
  tiny.chunk = 16;
  tiny.local_size = 16;
  (void)bs::ep_opencl(tiny, tesla_device());
  (void)bs::ep_hpl(tiny, hpl_tesla());
  HPL::purge_kernel_cache();
}

}  // namespace

int main(int argc, char** argv) {
  hplrepro::bench::JsonReporter reporter(argc, argv, "fig8_slowdown");
  warm_up_process();
  print_header("Figure 8: slowdown of HPL vs OpenCL per benchmark (Tesla)",
               "paper Fig. 8; paper slowdowns are typically below 4%");

  std::vector<Row> rows;

  {
    bs::EpConfig config = bs::ep_class('C');
    config.repeats = 6;
    HPL::purge_kernel_cache();
    rows.push_back({"EP (class C)",
                    bs::ep_opencl(config, tesla_device()).timings,
                    bs::ep_hpl(config, hpl_tesla()).timings, "~1%"});
  }
  {
    bs::FloydConfig config;
    config.nodes = 256;
    config.repeats = 2;
    HPL::purge_kernel_cache();
    rows.push_back({"Floyd (256)",
                    bs::floyd_opencl(config, tesla_device()).timings,
                    bs::floyd_hpl(config, hpl_tesla()).timings, "~2%"});
  }
  {
    bs::TransposeConfig config;
    config.rows = config.cols = 1024;
    config.repeats = 25;
    HPL::purge_kernel_cache();
    rows.push_back({"Transpose (1K)",
                    bs::transpose_opencl(config, tesla_device()).timings,
                    bs::transpose_hpl(config, hpl_tesla()).timings,
                    "3.47%"});
  }
  {
    bs::SpmvConfig config;
    config.rows = 4096;
    config.repeats = 40;
    HPL::purge_kernel_cache();
    rows.push_back({"Spmv (4K)",
                    bs::spmv_opencl(config, tesla_device()).timings,
                    bs::spmv_hpl(config, hpl_tesla()).timings, "~2%"});
  }
  {
    bs::ReductionConfig config;
    config.elements = 1 << 21;
    config.repeats = 40;
    HPL::purge_kernel_cache();
    rows.push_back({"Reduction (2M)",
                    bs::reduction_opencl(config, tesla_device()).timings,
                    bs::reduction_hpl(config, hpl_tesla()).timings, "~1%"});
  }

  hplrepro::Table table({"benchmark", "OpenCL (s)", "HPL (s)",
                         "HPL slowdown", "slowdown w/ transfers",
                         "paper (no transfers)"});
  for (const auto& row : rows) {
    const double no_t =
        (row.hpl.modeled_no_transfer() / row.opencl.modeled_no_transfer() -
         1.0) *
        100.0;
    const double with_t =
        (row.hpl.modeled_total() / row.opencl.modeled_total() - 1.0) * 100.0;
    table.add_row({row.name, fmt(row.opencl.modeled_no_transfer()),
                   fmt(row.hpl.modeled_no_transfer()), fmt_pct(no_t),
                   fmt_pct(with_t), row.paper_note});
    reporter.add_row(
        row.name,
        {{"opencl_seconds", row.opencl.modeled_no_transfer()},
         {"hpl_seconds", row.hpl.modeled_no_transfer()},
         {"opencl_seconds_with_transfers", row.opencl.modeled_total()},
         {"hpl_seconds_with_transfers", row.hpl.modeled_total()},
         {"hpl_slowdown_pct", no_t},
         {"hpl_slowdown_with_transfers_pct", with_t}});
  }
  table.print(std::cout);

  std::cout << "\nThe degradation comes from HPL's one-time kernel capture "
               "and code generation; the generated kernels themselves run "
               "at hand-written speed (identical simulated kernel time). "
               "As in the paper, counting transfers dilutes the transpose "
               "overhead further.\n";
  return 0;
}
