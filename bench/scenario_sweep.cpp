// Scenario sweep driver: runs the grader matrix (device × sync ×
// interpreter × opt × fusion × size) over every benchsuite workload, the
// co-execution and fusion axes, the grader's sabotage self-test, prints a
// scoreboard, and with --json <path> writes the "hplrepro-scenario-v1"
// scorecard.
//
//   bench/scenario_sweep                 # full matrix
//   bench/scenario_sweep --reduced       # small sizes only (ctest/CI)
//   bench/scenario_sweep --json BENCH_scenario.json
//   bench/scenario_sweep --metrics metrics.json   # hplrepro-metrics-v1

#include <fstream>
#include <iostream>
#include <string>

#include "hpl/HPL.h"
#include "scenario/scenario.hpp"
#include "support/metrics.hpp"

namespace scenario = hplrepro::scenario;

int main(int argc, char** argv) {
  bool reduced = false;
  std::string json_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reduced") {
      reduced = true;
    } else if (arg == "--full") {
      reduced = false;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
      hplrepro::metrics::set_enabled(true);
    } else {
      std::cerr << "usage: scenario_sweep [--reduced|--full] [--json <path>]"
                   " [--metrics <path>]\n";
      return 2;
    }
  }

  const scenario::Axes axes =
      reduced ? scenario::Axes::reduced() : scenario::Axes::full();
  std::cout << "scenario sweep: " << axes.cell_count() << " cells ("
            << (reduced ? "reduced" : "full") << " matrix), "
            << scenario::workload_names().size() << " workloads\n";

  const scenario::SweepReport report = scenario::run_sweep(axes);
  const bool sabotage_caught = scenario::grader_catches_sabotage();
  const std::vector<scenario::CoexecGrade> coexec =
      scenario::run_coexec_axis();
  const std::vector<scenario::FusionGrade> fusion =
      scenario::run_fusion_axis();

  for (const auto& cell : report.cells) {
    if (cell.passed()) continue;
    for (const auto& grade : cell.grades) {
      for (const auto& failure : grade.failures) {
        std::cout << "FAIL " << cell.cell.label() << " " << grade.workload
                  << ": " << failure << "\n";
      }
    }
  }
  for (const auto& failure : report.identity_failures) {
    std::cout << "FAIL identity: " << failure << "\n";
  }
  std::size_t coexec_failed = 0;
  for (const auto& grade : coexec) {
    if (grade.passed()) continue;
    ++coexec_failed;
    for (const auto& failure : grade.failures) {
      std::cout << "FAIL coexec " << grade.workload << "/" << grade.policy
                << "/" << grade.device_count << "dev: " << failure << "\n";
    }
  }

  std::size_t fusion_failed = 0;
  std::uint64_t chained_unfused = 0, chained_fused = 0;
  for (const auto& grade : fusion) {
    if (grade.chained) {
      chained_unfused += grade.unfused_launches;
      chained_fused += grade.fused_launches;
    }
    if (grade.passed()) continue;
    ++fusion_failed;
    for (const auto& failure : grade.failures) {
      std::cout << "FAIL fusion " << grade.program << ": " << failure
                << "\n";
    }
  }

  std::cout << "graded " << report.graded << " runs: " << report.passed
            << " passed, " << report.failed << " failed, " << report.skipped
            << " skipped, " << report.identity_failures.size()
            << " identity failures\n";
  std::cout << "coexec axis: " << coexec.size() << " grades, "
            << (coexec.size() - coexec_failed) << " passed, "
            << coexec_failed << " failed\n";
  std::cout << "fusion axis: " << fusion.size() << " grades, "
            << (fusion.size() - fusion_failed) << " passed, "
            << fusion_failed << " failed (chained corpus: "
            << chained_unfused << " -> " << chained_fused << " launches)\n";
  std::cout << "self-test (sabotaged boundary policy caught): "
            << (sabotage_caught ? "yes" : "NO") << "\n";

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "scenario_sweep: cannot open " << json_path
                << " for writing\n";
      return 2;
    }
    os << scenario::report_json(report, sabotage_caught ? 1 : 0, &coexec,
                                &fusion);
    std::cout << "wrote " << json_path << "\n";
  }

  if (!metrics_path.empty()) {
    if (!HPL::metrics_write(metrics_path)) {
      std::cerr << "scenario_sweep: cannot open " << metrics_path
                << " for writing\n";
      return 2;
    }
    std::cout << "wrote " << metrics_path << "\n";
  }

  return report.ok() && sabotage_caught && coexec_failed == 0 &&
                 fusion_failed == 0
             ? 0
             : 1;
}
