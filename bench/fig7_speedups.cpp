// Reproduces paper Figure 7: speedups of the GPU (Tesla C2050) executions
// of the OpenCL and HPL versions of all five benchmarks over a serial CPU
// execution, transfers excluded (paper §V-B).
//
// The serial baseline is the same workload run on the simulated one-core
// Xeon device (the substitution DESIGN.md documents); speedup =
// CPU modeled time / GPU modeled time.

#include <iostream>

#include "bench_common.hpp"
#include "benchsuite/ep.hpp"
#include "benchsuite/floyd.hpp"
#include "benchsuite/reduction.hpp"
#include "benchsuite/spmv.hpp"
#include "benchsuite/transpose.hpp"

namespace bs = hplrepro::benchsuite;
using namespace hplrepro::bench;

namespace {

struct Row {
  std::string name;
  double cpu_seconds;
  double opencl_seconds;
  double hpl_seconds;
  std::string paper_note;
};

}  // namespace

namespace {

void warm_up_process() {
  bs::EpConfig tiny;
  tiny.pairs = 1 << 8;
  tiny.chunk = 16;
  tiny.local_size = 16;
  (void)bs::ep_opencl(tiny, cpu_device());
  (void)bs::ep_hpl(tiny, hpl_tesla());
  HPL::purge_kernel_cache();
}

}  // namespace

int main(int argc, char** argv) {
  hplrepro::bench::JsonReporter reporter(argc, argv, "fig7_speedups");
  warm_up_process();
  print_header("Figure 7: speedup over serial CPU, all benchmarks",
               "paper Fig. 7; paper values range from 5.4x (spmv) to 257x "
               "(EP) for OpenCL");

  std::vector<Row> rows;

  {
    bs::EpConfig config = bs::ep_class('C');
    config.repeats = 4;
    HPL::purge_kernel_cache();
    const auto cpu = bs::ep_opencl(config, cpu_device());
    const auto ocl = bs::ep_opencl(config, tesla_device());
    const auto hpl = bs::ep_hpl(config, hpl_tesla());
    rows.push_back({"EP (class C)", cpu.timings.modeled_no_transfer(),
                    ocl.timings.modeled_no_transfer(),
                    hpl.timings.modeled_no_transfer(), "257x"});
  }
  {
    bs::FloydConfig config;
    config.nodes = 256;  // paper: 1024 nodes
    HPL::purge_kernel_cache();
    const auto cpu = bs::floyd_opencl(config, cpu_device());
    const auto ocl = bs::floyd_opencl(config, tesla_device());
    const auto hpl = bs::floyd_hpl(config, hpl_tesla());
    rows.push_back({"Floyd (256 nodes)", cpu.timings.modeled_no_transfer(),
                    ocl.timings.modeled_no_transfer(),
                    hpl.timings.modeled_no_transfer(), "(tall bar)"});
  }
  {
    bs::TransposeConfig config;
    config.rows = 1024;
    config.cols = 1024;  // paper: 16K x 16K
    config.repeats = 15;
    HPL::purge_kernel_cache();
    const auto cpu = bs::transpose_opencl(config, cpu_device());
    const auto ocl = bs::transpose_opencl(config, tesla_device());
    const auto hpl = bs::transpose_hpl(config, hpl_tesla());
    rows.push_back({"Transpose (1K x 1K)",
                    cpu.timings.modeled_no_transfer(),
                    ocl.timings.modeled_no_transfer(),
                    hpl.timings.modeled_no_transfer(), "(medium bar)"});
  }
  {
    bs::SpmvConfig config;
    config.rows = 4096;  // paper: 16K x 16K at 1% nonzeroes
    config.repeats = 30;
    HPL::purge_kernel_cache();
    const auto cpu = bs::spmv_opencl(config, cpu_device());
    const auto ocl = bs::spmv_opencl(config, tesla_device());
    const auto hpl = bs::spmv_hpl(config, hpl_tesla());
    rows.push_back({"Spmv (4K x 4K, 1%)", cpu.timings.modeled_no_transfer(),
                    ocl.timings.modeled_no_transfer(),
                    hpl.timings.modeled_no_transfer(), "5.4x"});
  }
  {
    bs::ReductionConfig config;
    config.elements = 1 << 21;  // paper: 16M values
    config.repeats = 30;
    HPL::purge_kernel_cache();
    const auto cpu = bs::reduction_opencl(config, cpu_device());
    const auto ocl = bs::reduction_opencl(config, tesla_device());
    const auto hpl = bs::reduction_hpl(config, hpl_tesla());
    rows.push_back({"Reduction (2M)", cpu.timings.modeled_no_transfer(),
                    ocl.timings.modeled_no_transfer(),
                    hpl.timings.modeled_no_transfer(), "(short bar)"});
  }

  hplrepro::Table table({"benchmark", "CPU serial (s)", "OpenCL (s)",
                         "HPL (s)", "OpenCL speedup", "HPL speedup",
                         "HPL slowdown vs OpenCL", "paper (OpenCL)"});
  for (const auto& row : rows) {
    const double su_ocl = row.cpu_seconds / row.opencl_seconds;
    const double su_hpl = row.cpu_seconds / row.hpl_seconds;
    const double slowdown =
        (row.hpl_seconds / row.opencl_seconds - 1.0) * 100.0;
    table.add_row({row.name, fmt(row.cpu_seconds), fmt(row.opencl_seconds),
                   fmt(row.hpl_seconds), fmt_x(su_ocl), fmt_x(su_hpl),
                   fmt_pct(slowdown), row.paper_note});
    reporter.add_row(row.name,
                     {{"cpu_seconds", row.cpu_seconds},
                      {"opencl_seconds", row.opencl_seconds},
                      {"hpl_seconds", row.hpl_seconds},
                      {"opencl_speedup", su_ocl},
                      {"hpl_speedup", su_hpl},
                      {"hpl_slowdown_pct", slowdown}});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: EP >> Floyd > transpose/reduction > spmv; "
               "HPL within a few percent of OpenCL everywhere.\n";
  return 0;
}
