// Co-execution benchmark: split each workload's NDRange across the GPUs
// and report the achieved fraction of the summed per-device roofline for
// every scheduling policy.
//
// The roofline for a device set is the ideal co-execution time
//     T_ideal = 1 / sum_d (1 / T_d)
// where T_d is the simulated kernel time of the whole workload run on
// device d alone: it assumes every device computes at its single-device
// rate with zero imbalance. The achieved time is the scheduler's
// simulated makespan (the busiest slot's clock), so
//     fraction = T_ideal / makespan
// is 1.0 for a perfect split. A static half/half split of an asymmetric
// pair (Tesla ~6x the Quadro's bandwidth) is bounded by the slow device
// and lands far below the adaptive policies.
//
// Every co-executed run is also checked bit-identical against the
// single-device result; any mismatch fails the binary.
//
// `--json <path>` writes an hplrepro-coexec-v1 document (validated in CI
// by tools/validate_coexec.py).

#include <cstddef>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "benchsuite/reduction.hpp"
#include "benchsuite/stencil.hpp"
#include "benchsuite/transpose.hpp"
#include "coexec/coexec.hpp"

namespace {

using hplrepro::bench::fmt;
using hplrepro::coexec::Policy;
namespace benchsuite = hplrepro::benchsuite;

constexpr Policy kPolicies[] = {Policy::Static, Policy::Dynamic,
                                Policy::Guided};

/// One workload run: a bit-exact result signature plus its timings.
struct RunOutcome {
  std::vector<double> signature;
  benchsuite::Timings timings;
};

/// Runs the workload on `single` when `devs` is empty, co-executed across
/// `devs` under `policy` otherwise.
using WorkloadFn = std::function<RunOutcome(
    const std::vector<HPL::Device>& devs, Policy policy, HPL::Device single)>;

struct PolicyOutcome {
  Policy policy = Policy::Static;
  double makespan_s = 0;
  double fraction = 0;
  std::size_t chunks = 0;
  bool bit_identical = false;
};

struct WorkloadOutcome {
  std::string name;
  std::vector<std::pair<std::string, double>> device_seconds;
  double ideal_s = 0;
  std::vector<PolicyOutcome> policies;
};

std::vector<double> widen(const std::vector<float>& v) {
  return std::vector<double>(v.begin(), v.end());
}

WorkloadOutcome run_workload(const std::string& name,
                             const std::vector<HPL::Device>& devices,
                             const WorkloadFn& run) {
  WorkloadOutcome out;
  out.name = name;

  // Per-device rooflines: the workload alone on each device.
  std::vector<double> reference;
  double inv_sum = 0;
  for (std::size_t d = 0; d < devices.size(); ++d) {
    HPL::purge_kernel_cache();
    HPL::reset_profile();
    const RunOutcome single = run({}, Policy::Static, devices[d]);
    if (d == 0) reference = single.signature;
    const double t = single.timings.kernel_sim_seconds;
    out.device_seconds.emplace_back(devices[d].name(), t);
    inv_sum += 1.0 / t;
  }
  out.ideal_s = 1.0 / inv_sum;

  for (const Policy policy : kPolicies) {
    HPL::purge_kernel_cache();
    HPL::reset_profile();
    const RunOutcome split = run(devices, policy, devices[0]);
    const hplrepro::coexec::DispatchResult plan =
        hplrepro::coexec::last_dispatch();
    PolicyOutcome po;
    po.policy = policy;
    po.makespan_s = plan.makespan();
    po.fraction = out.ideal_s / po.makespan_s;
    po.chunks = plan.chunks.size();
    po.bit_identical = split.signature == reference;
    out.policies.push_back(po);
  }
  return out;
}

WorkloadOutcome bench_reduction(const std::vector<HPL::Device>& devices) {
  return run_workload(
      "reduction", devices,
      [](const std::vector<HPL::Device>& devs, Policy policy,
         HPL::Device single) {
        benchsuite::ReductionConfig cfg;
        cfg.elements = 1 << 23;
        cfg.groups = 1024;
        cfg.local_size = 128;
        cfg.coexec_devices = devs;
        cfg.coexec_policy = policy;
        const auto run = benchsuite::reduction_hpl(cfg, single);
        return RunOutcome{{run.sum}, run.timings};
      });
}

WorkloadOutcome bench_transpose(const std::vector<HPL::Device>& devices) {
  return run_workload(
      "transpose", devices,
      [](const std::vector<HPL::Device>& devs, Policy policy,
         HPL::Device single) {
        benchsuite::TransposeConfig cfg;
        cfg.rows = 2048;
        cfg.cols = 2048;
        cfg.coexec_devices = devs;
        cfg.coexec_policy = policy;
        const auto run = benchsuite::transpose_hpl(cfg, single);
        return RunOutcome{widen(run.output), run.timings};
      });
}

WorkloadOutcome bench_jacobi(const std::vector<HPL::Device>& devices) {
  return run_workload(
      "jacobi", devices,
      [](const std::vector<HPL::Device>& devs, Policy policy,
         HPL::Device single) {
        benchsuite::StencilConfig cfg;
        cfg.width = 1024;
        cfg.height = 1024;
        cfg.iterations = 1;  // one sweep == one dispatch == one makespan
        cfg.coexec_devices = devs;
        cfg.coexec_policy = policy;
        const auto run = benchsuite::jacobi_hpl(cfg, single);
        return RunOutcome{widen(run.output), run.timings};
      });
}

void write_json(const std::string& path,
                const std::vector<HPL::Device>& devices,
                const std::vector<WorkloadOutcome>& workloads) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "coexec: cannot open " << path << " for writing\n";
    return;
  }
  os << "{\n  \"schema\": \"hplrepro-coexec-v1\",\n  \"devices\": [";
  for (std::size_t d = 0; d < devices.size(); ++d) {
    os << (d ? ", " : "") << "\"" << devices[d].name() << "\"";
  }
  os << "],\n  \"workloads\": [\n";
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const WorkloadOutcome& wl = workloads[w];
    os << "    {\"name\": \"" << wl.name << "\",\n"
       << "     \"single_device_seconds\": {";
    for (std::size_t d = 0; d < wl.device_seconds.size(); ++d) {
      os << (d ? ", " : "") << "\"" << wl.device_seconds[d].first
         << "\": " << hplrepro::format_double(wl.device_seconds[d].second, 9);
    }
    os << "},\n     \"ideal_seconds\": "
       << hplrepro::format_double(wl.ideal_s, 9) << ",\n"
       << "     \"policies\": [\n";
    for (std::size_t p = 0; p < wl.policies.size(); ++p) {
      const PolicyOutcome& po = wl.policies[p];
      os << "       {\"policy\": \"" << policy_name(po.policy)
         << "\", \"makespan_seconds\": "
         << hplrepro::format_double(po.makespan_s, 9)
         << ", \"fraction_of_roofline\": "
         << hplrepro::format_double(po.fraction, 9)
         << ", \"chunks\": " << po.chunks << ", \"bit_identical\": "
         << (po.bit_identical ? "true" : "false") << "}"
         << (p + 1 < wl.policies.size() ? "," : "") << "\n";
    }
    os << "     ]}" << (w + 1 < workloads.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "\n[json results written to " << path << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }

  hplrepro::bench::print_header(
      "Co-execution: fraction of summed per-device roofline",
      "the EngineCL-style multi-device extension, §co-execution of "
      "DESIGN.md");

  const std::vector<HPL::Device> devices = {hplrepro::bench::hpl_tesla(),
                                            hplrepro::bench::hpl_quadro()};
  std::cout << "device set:";
  for (const HPL::Device& d : devices) std::cout << " [" << d.name() << "]";
  std::cout << "\n\n";

  const std::vector<WorkloadOutcome> workloads = {
      bench_reduction(devices), bench_transpose(devices),
      bench_jacobi(devices)};

  bool all_identical = true;
  hplrepro::Table table(
      {"workload", "policy", "makespan", "ideal", "fraction", "chunks",
       "bit-identical"});
  for (const WorkloadOutcome& wl : workloads) {
    for (const PolicyOutcome& po : wl.policies) {
      table.add_row({wl.name, policy_name(po.policy),
                     fmt(po.makespan_s * 1e3) + " ms",
                     fmt(wl.ideal_s * 1e3) + " ms", fmt(po.fraction, 3),
                     std::to_string(po.chunks),
                     po.bit_identical ? "yes" : "NO"});
      all_identical = all_identical && po.bit_identical;
    }
  }
  table.print(std::cout);

  // Greppable per-policy rows for CI.
  std::cout << "\n";
  for (const WorkloadOutcome& wl : workloads) {
    for (const PolicyOutcome& po : wl.policies) {
      std::cout << "ROOFLINE " << wl.name << " " << policy_name(po.policy)
                << " " << fmt(po.fraction, 3) << "\n";
    }
  }

  if (!json_path.empty()) write_json(json_path, devices, workloads);

  if (!all_identical) {
    std::cerr << "\nFAIL: co-executed result differs from single-device\n";
    return 1;
  }
  return 0;
}
