// Reproduces paper Table I: source lines of code of the OpenCL and HPL
// versions of the five benchmarks and the reduction achieved by HPL.
//
// The counts are computed from the sources checked into this repository
// with a Sloccount-equivalent physical-SLOC counter (comments and blank
// lines excluded). Our OpenCL baselines are leaner than the original NPB /
// AMD APP / SHOC programs the paper counted (those carried their own
// self-verification and timing infrastructure), so absolute counts are
// lower; the direction and rough magnitude of the reduction is what this
// table reproduces.

#include <iostream>

#include "bench_common.hpp"
#include "benchsuite/sloc.hpp"

namespace bs = hplrepro::benchsuite;
using namespace hplrepro::bench;

int main() {
  print_header("Table I: SLOCs of the OpenCL and HPL benchmark versions",
               "paper Table I; paper reductions: EP 75.6%, Floyd 90.9%, "
               "transpose 88.6%, spmv 68.4%, reduction 71.8%");

  hplrepro::Table table(
      {"Benchmark", "OpenCL", "HPL", "Reduction", "paper reduction"});

  const char* paper[] = {"75.6%", "90.9%", "88.6%", "68.4%", "71.8%"};
  std::size_t total_ocl = 0, total_hpl = 0;
  std::size_t i = 0;
  for (const auto& entry : bs::table1_sources()) {
    std::size_t ocl = 0, hpl = 0;
    for (const auto& path : entry.opencl) {
      ocl += bs::count_sloc_file(bs::repo_path(path));
    }
    for (const auto& path : entry.hpl) {
      hpl += bs::count_sloc_file(bs::repo_path(path));
    }
    total_ocl += ocl;
    total_hpl += hpl;
    const double reduction =
        100.0 * (1.0 - static_cast<double>(hpl) / static_cast<double>(ocl));
    table.add_row({entry.benchmark, std::to_string(ocl), std::to_string(hpl),
                   fmt_pct(reduction), paper[i++]});
  }
  const double total_reduction =
      100.0 *
      (1.0 - static_cast<double>(total_hpl) / static_cast<double>(total_ocl));
  table.add_row({"(total)", std::to_string(total_ocl),
                 std::to_string(total_hpl), fmt_pct(total_reduction), "-"});
  table.print(std::cout);

  std::cout << "\nHPL versions are shorter because environment setup, "
               "buffer management, transfers and kernel compilation are "
               "automated (paper §V-A).\n";
  return 0;
}
