// Reproduces paper Figure 9: HPL overhead with respect to OpenCL on two
// different devices — the Tesla C2050 and the Quadro FX 380 — for the four
// benchmarks that run on both. EP is excluded exactly as in the paper: it
// needs double precision, which the FX 380 does not support (our simulated
// Quadro faithfully rejects double-precision kernels). Problem sizes are
// reduced on the Quadro as in the paper (Floyd 512, transpose 5K, spmv 8K,
// all scaled by our global factor).

#include <iostream>

#include "bench_common.hpp"
#include "benchsuite/floyd.hpp"
#include "benchsuite/reduction.hpp"
#include "benchsuite/spmv.hpp"
#include "benchsuite/transpose.hpp"

namespace bs = hplrepro::benchsuite;
using namespace hplrepro::bench;

namespace {

double slowdown_pct(const bs::Timings& hpl, const bs::Timings& ocl) {
  return (hpl.modeled_no_transfer() / ocl.modeled_no_transfer() - 1.0) *
         100.0;
}

}  // namespace

namespace {

void warm_up_process() {
  bs::ReductionConfig tiny;
  tiny.elements = 1 << 10;
  tiny.groups = 4;
  tiny.local_size = 32;
  (void)bs::reduction_opencl(tiny, tesla_device());
  (void)bs::reduction_hpl(tiny, hpl_tesla());
  HPL::purge_kernel_cache();
}

}  // namespace

int main(int argc, char** argv) {
  hplrepro::bench::JsonReporter reporter(argc, argv, "fig9_portability");
  warm_up_process();
  print_header(
      "Figure 9: HPL overhead vs OpenCL on the Tesla C2050 and Quadro FX380",
      "paper Fig. 9; overhead stays small (<4%) on both devices; EP "
      "excluded (no double precision on the FX 380)");

  hplrepro::Table table({"benchmark", "Tesla HPL overhead",
                         "Quadro HPL overhead", "paper"});

  {
    bs::FloydConfig tesla_cfg;
    tesla_cfg.nodes = 256;
    tesla_cfg.repeats = 2;
    bs::FloydConfig quadro_cfg = tesla_cfg;
    quadro_cfg.nodes = 128;  // paper: halved to 512 for the Quadro
    HPL::purge_kernel_cache();
    const double tesla = slowdown_pct(
        bs::floyd_hpl(tesla_cfg, hpl_tesla()).timings,
        bs::floyd_opencl(tesla_cfg, tesla_device()).timings);
    HPL::purge_kernel_cache();
    const double quadro = slowdown_pct(
        bs::floyd_hpl(quadro_cfg, hpl_quadro()).timings,
        bs::floyd_opencl(quadro_cfg, quadro_device()).timings);
    reporter.add_row("Floyd", {{"tesla_overhead_pct", tesla},
                                {"quadro_overhead_pct", quadro}});
    table.add_row({"Floyd", fmt_pct(tesla), fmt_pct(quadro), "<2.5%"});
  }
  {
    bs::TransposeConfig tesla_cfg;
    tesla_cfg.rows = tesla_cfg.cols = 1024;
    tesla_cfg.repeats = 25;
    bs::TransposeConfig quadro_cfg = tesla_cfg;
    quadro_cfg.rows = quadro_cfg.cols = 512;  // paper: 5K vs 16K
    HPL::purge_kernel_cache();
    const double tesla = slowdown_pct(
        bs::transpose_hpl(tesla_cfg, hpl_tesla()).timings,
        bs::transpose_opencl(tesla_cfg, tesla_device()).timings);
    HPL::purge_kernel_cache();
    const double quadro = slowdown_pct(
        bs::transpose_hpl(quadro_cfg, hpl_quadro()).timings,
        bs::transpose_opencl(quadro_cfg, quadro_device()).timings);
    reporter.add_row("Transpose", {{"tesla_overhead_pct", tesla},
                                {"quadro_overhead_pct", quadro}});
    table.add_row({"Transpose", fmt_pct(tesla), fmt_pct(quadro), "<3.5%"});
  }
  {
    bs::SpmvConfig tesla_cfg;
    tesla_cfg.rows = 4096;
    tesla_cfg.repeats = 40;
    bs::SpmvConfig quadro_cfg = tesla_cfg;
    quadro_cfg.rows = 2048;  // paper: 8K vs 16K
    HPL::purge_kernel_cache();
    const double tesla = slowdown_pct(
        bs::spmv_hpl(tesla_cfg, hpl_tesla()).timings,
        bs::spmv_opencl(tesla_cfg, tesla_device()).timings);
    HPL::purge_kernel_cache();
    const double quadro = slowdown_pct(
        bs::spmv_hpl(quadro_cfg, hpl_quadro()).timings,
        bs::spmv_opencl(quadro_cfg, quadro_device()).timings);
    reporter.add_row("Spmv", {{"tesla_overhead_pct", tesla},
                                {"quadro_overhead_pct", quadro}});
    table.add_row({"Spmv", fmt_pct(tesla), fmt_pct(quadro), "<2%"});
  }
  {
    bs::ReductionConfig tesla_cfg;
    tesla_cfg.elements = 1 << 21;
    tesla_cfg.repeats = 40;
    bs::ReductionConfig quadro_cfg = tesla_cfg;
    quadro_cfg.elements = 1 << 20;
    HPL::purge_kernel_cache();
    const double tesla = slowdown_pct(
        bs::reduction_hpl(tesla_cfg, hpl_tesla()).timings,
        bs::reduction_opencl(tesla_cfg, tesla_device()).timings);
    HPL::purge_kernel_cache();
    const double quadro = slowdown_pct(
        bs::reduction_hpl(quadro_cfg, hpl_quadro()).timings,
        bs::reduction_opencl(quadro_cfg, quadro_device()).timings);
    reporter.add_row("Reduction", {{"tesla_overhead_pct", tesla},
                                {"quadro_overhead_pct", quadro}});
    table.add_row({"Reduction", fmt_pct(tesla), fmt_pct(quadro), "<1.5%"});
  }
  table.print(std::cout);

  std::cout << "\nThe same HPL sources run unmodified on both simulated "
               "devices; overhead stays small on both, demonstrating the "
               "portability claim (paper §V-C).\n";
  return 0;
}
