// Ablation: HPL's kernel binary cache (paper §V-B: "HPL stores internally
// and reuses the binaries of the kernels it generates ... second and later
// invocations do not incur in overheads of analysis, backend code
// generation and compilation").
//
// We measure the real host-side cost of an eval with the cache disabled
// (purged before every call — i.e. what every invocation would cost
// without the design decision) against cached steady-state dispatch.

#include <iostream>

#include "bench_common.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace HPL;

void saxpy(Array<float, 1> y, Array<float, 1> x, Float a) {
  y[idx] = a * x[idx] + y[idx];
}

void dot_chunk(Array<float, 1> v1, Array<float, 1> v2,
               Array<float, 1> partial) {
  Int i;
  Array<float, 1, Local> shared(32);
  shared[lidx] = v1[idx] * v2[idx];
  barrier(LOCAL);
  if_(lidx == 0) {
    Float sum = 0;
    for_(i = 0, i < 32, i++) {
      sum += shared[i];
    } endfor_
    partial[gidx] = sum;
  } endif_
}

template <typename Fn>
double time_per_eval_us(int iterations, Fn&& body) {
  // Measure host overhead only: subtract the wall time spent simulating.
  const auto before = profile();
  hplrepro::Stopwatch watch;
  for (int i = 0; i < iterations; ++i) body();
  const double wall = watch.seconds();
  const auto after = profile();
  return (wall - (after.sim_wall_seconds - before.sim_wall_seconds)) /
         iterations * 1e6;
}

}  // namespace

int main() {
  using namespace hplrepro::bench;
  print_header("Ablation: kernel binary cache",
               "the design decision behind paper §V-B's 'virtually "
               "identical' repeat-invocation runtimes");

  Array<float, 1> x(4096), y(4096), partial(128);
  for (int i = 0; i < 4096; ++i) x(i) = 1.0f;

  hplrepro::Table table({"kernel", "uncached eval (us)", "cached eval (us)",
                         "speedup"});

  {
    eval(saxpy)(y, x, 2.0f);  // warm both paths' data transfers
    const double uncached = time_per_eval_us(50, [&] {
      purge_kernel_cache();
      eval(saxpy)(y, x, 2.0f);
    });
    const double cached =
        time_per_eval_us(200, [&] { eval(saxpy)(y, x, 2.0f); });
    table.add_row({"saxpy", fmt(uncached), fmt(cached),
                   fmt_x(uncached / cached)});
  }
  {
    eval(dot_chunk).global(4096).local(32)(x, y, partial);
    const double uncached = time_per_eval_us(50, [&] {
      purge_kernel_cache();
      eval(dot_chunk).global(4096).local(32)(x, y, partial);
    });
    const double cached = time_per_eval_us(200, [&] {
      eval(dot_chunk).global(4096).local(32)(x, y, partial);
    });
    table.add_row({"dot product (barrier)", fmt(uncached), fmt(cached),
                   fmt_x(uncached / cached)});
  }

  table.print(std::cout);
  std::cout << "\nWithout the cache every invocation would pay capture + "
               "code generation + compilation; with it, dispatch is a "
               "couple of microseconds.\n";
  return 0;
}
